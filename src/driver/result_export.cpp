#include "driver/result_export.hpp"

#include <cstdio>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "config/param_registry.hpp"

namespace resim::driver {

namespace {

std::string fixed6(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(6) << v;
  return os.str();
}

/// Config value as a JSON literal: numbers and booleans bare, enums
/// quoted — same typing the registry exposes.
std::string json_value(const config::ParamInfo& p, const core::CoreConfig& cfg) {
  const auto& reg = config::ParamRegistry::instance();
  const std::string v = reg.format(p, cfg);
  if (p.type != config::ParamType::kEnum) return v;
  // Built up in place: `"..." + std::string` trips GCC 12's -Wrestrict
  // false positive (PR105651) at -O3.
  std::string out = "\"";
  out += json_escape(v);
  out += '"';
  return out;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string result_json(const JobResult& r, unsigned indent) {
  const auto& reg = config::ParamRegistry::instance();
  const std::string in(indent, ' ');
  std::ostringstream os;
  os << in << "{\n";
  os << in << "  \"label\": \"" << json_escape(r.label) << "\",\n";
  os << in << "  \"workload\": \"" << json_escape(r.workload) << "\",\n";

  os << in << "  \"config\": {\n";
  const auto& params = reg.params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    os << in << "    \"" << params[i].path << "\": " << json_value(params[i], r.config)
       << (i + 1 < params.size() ? ",\n" : "\n");
  }
  os << in << "  },\n";

  os << in << "  \"result\": {\n";
  os << in << "    \"committed\": " << r.result.committed << ",\n";
  os << in << "    \"fetched\": " << r.result.fetched << ",\n";
  os << in << "    \"wrong_path_fetched\": " << r.result.wrong_path_fetched << ",\n";
  os << in << "    \"squashed\": " << r.result.squashed << ",\n";
  os << in << "    \"major_cycles\": " << r.result.major_cycles << ",\n";
  os << in << "    \"minor_cycles\": " << r.result.minor_cycles << ",\n";
  os << in << "    \"trace_records\": " << r.result.trace_records << ",\n";
  os << in << "    \"trace_bits\": " << r.result.trace_bits << ",\n";
  os << in << "    \"ipc\": " << fixed6(r.result.ipc()) << ",\n";
  os << in << "    \"bits_per_record\": " << fixed6(r.result.bits_per_record()) << "\n";
  os << in << "  },\n";

  os << in << "  \"stats\": {\n";
  os << in << "    \"counters\": {";
  // Only touched stats are exported (the registry's visibility contract):
  // resolve-once handles register names eagerly, and a silent counter
  // must not appear where the lazy-creation binary printed nothing.
  std::size_t i = 0;
  for (const auto& [name, c] : r.result.stats.counters()) {
    if (!c.touched()) continue;
    os << (i++ == 0 ? "\n" : ",\n") << in << "      \"" << json_escape(name)
       << "\": " << c.value();
  }
  os << (i == 0 ? "" : "\n" + in + "    ") << "},\n";
  os << in << "    \"occupancies\": {";
  i = 0;
  for (const auto& [name, o] : r.result.stats.occupancies()) {
    if (!o.touched()) continue;
    os << (i++ == 0 ? "\n" : ",\n") << in << "      \"" << json_escape(name)
       << "\": {\"average\": " << fixed6(o.average()) << ", \"max\": " << o.max()
       << ", \"samples\": " << o.samples() << "}";
  }
  os << (i == 0 ? "" : "\n" + in + "    ") << "}\n";
  os << in << "  }\n";
  os << in << "}";
  return os.str();
}

void write_json(std::ostream& os, const std::vector<JobResult>& results) {
  os << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    os << result_json(results[i], 2) << (i + 1 < results.size() ? ",\n" : "\n");
  }
  os << "]\n";
}

std::string config_csv_header() {
  const auto& reg = config::ParamRegistry::instance();
  std::string h = "label,workload";
  for (const auto& p : reg.params()) {
    h += ',';
    h += p.path;
  }
  h += ",committed,fetched,wrong_path_fetched,squashed,major_cycles,minor_cycles,"
       "trace_records,trace_bits,ipc,bits_per_record";
  return h;
}

std::string config_csv_row(const JobResult& r) {
  const auto& reg = config::ParamRegistry::instance();
  std::string row = csv_escape(r.label);
  row += ',';
  row += csv_escape(r.workload);
  for (const auto& p : reg.params()) {
    row += ',';
    row += reg.format(p, r.config);
  }
  row += ',' + std::to_string(r.result.committed);
  row += ',' + std::to_string(r.result.fetched);
  row += ',' + std::to_string(r.result.wrong_path_fetched);
  row += ',' + std::to_string(r.result.squashed);
  row += ',' + std::to_string(r.result.major_cycles);
  row += ',' + std::to_string(r.result.minor_cycles);
  row += ',' + std::to_string(r.result.trace_records);
  row += ',' + std::to_string(r.result.trace_bits);
  row += ',' + fixed6(r.result.ipc());
  row += ',' + fixed6(r.result.bits_per_record());
  return row;
}

void write_config_csv(std::ostream& os, const std::vector<JobResult>& results) {
  os << config_csv_header() << '\n';
  for (const auto& r : results) os << config_csv_row(r) << '\n';
}

void write_intervals_csv(std::ostream& os, const std::vector<core::IntervalRow>& rows) {
  os << "interval,end_inst,end_cycle,committed,cycles,branches,mispredicts,"
        "il1_misses,dl1_misses,ipc,mpki,branch_mpki\n";
  for (const auto& r : rows) {
    os << r.index << ',' << r.end_inst << ',' << r.end_cycle << ',' << r.committed << ','
       << r.cycles << ',' << r.branches << ',' << r.mispredicts << ',' << r.il1_misses
       << ',' << r.dl1_misses << ',' << fixed6(r.ipc()) << ',' << fixed6(r.mpki()) << ','
       << fixed6(r.branch_mpki()) << '\n';
  }
}

void write_intervals_json(std::ostream& os, const std::vector<core::IntervalRow>& rows,
                          std::uint64_t interval_insts) {
  // Columnar: one array per metric, index-aligned — the layout plotting
  // tools consume directly, and far smaller than row objects.
  const auto column = [&os, &rows](const char* name, auto getter, bool last = false) {
    os << "  \"" << name << "\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (i != 0) os << ", ";
      os << getter(rows[i]);
    }
    os << (last ? "]\n" : "],\n");
  };
  os << "{\n";
  os << "  \"interval_insts\": " << interval_insts << ",\n";
  os << "  \"intervals\": " << rows.size() << ",\n";
  column("end_inst", [](const core::IntervalRow& r) { return r.end_inst; });
  column("end_cycle", [](const core::IntervalRow& r) { return r.end_cycle; });
  column("committed", [](const core::IntervalRow& r) { return r.committed; });
  column("cycles", [](const core::IntervalRow& r) { return r.cycles; });
  column("branches", [](const core::IntervalRow& r) { return r.branches; });
  column("mispredicts", [](const core::IntervalRow& r) { return r.mispredicts; });
  column("il1_misses", [](const core::IntervalRow& r) { return r.il1_misses; });
  column("dl1_misses", [](const core::IntervalRow& r) { return r.dl1_misses; });
  column("ipc", [](const core::IntervalRow& r) { return fixed6(r.ipc()); });
  column("mpki", [](const core::IntervalRow& r) { return fixed6(r.mpki()); });
  column("branch_mpki", [](const core::IntervalRow& r) { return fixed6(r.branch_mpki()); },
         true);
  os << "}\n";
}

}  // namespace resim::driver
