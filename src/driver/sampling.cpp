#include "driver/sampling.hpp"

#include <cmath>
#include <fstream>
#include <stdexcept>
#include <string>

#include "trace/segment.hpp"

namespace resim::driver {

SamplingPlan SamplingPlan::uniform(std::uint64_t total, std::uint64_t k, std::uint64_t w,
                                   std::uint64_t u) {
  SamplingPlan plan;
  plan.window_records = w;
  plan.warmup_records = u;
  plan.total_records = total;
  if (k == 0 || w == 0 || total == 0) {
    plan.validate();  // throws with the precise reason
  }
  const std::uint64_t stride = total / k;
  // Center each window in its stride; when the windows would overlap
  // (K*W >= total) degrade to back-to-back coverage from the front.
  const std::uint64_t offset = stride > w ? (stride - w) / 2 : 0;
  plan.starts.reserve(static_cast<std::size_t>(k));
  std::uint64_t prev_end = 0;
  for (std::uint64_t i = 0; i < k; ++i) {
    std::uint64_t start = i * stride + offset;
    if (start < prev_end) start = prev_end;  // keep windows disjoint
    if (start >= total) break;               // trace exhausted: fewer windows
    plan.starts.push_back(start);
    prev_end = start + w;
  }
  plan.validate();
  return plan;
}

SamplingPlan SamplingPlan::from_file(const std::string& path, std::uint64_t total,
                                     std::uint64_t w, std::uint64_t u) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("sampling plan: cannot open '" + path + "'");
  }
  SamplingPlan plan;
  plan.window_records = w;
  plan.warmup_records = u;
  plan.total_records = total;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    const auto last = line.find_last_not_of(" \t\r");
    const std::string tok = line.substr(first, last - first + 1);
    try {
      std::size_t used = 0;
      const std::uint64_t v = std::stoull(tok, &used);
      if (used != tok.size()) throw std::invalid_argument(tok);
      plan.starts.push_back(v);
    } catch (const std::exception&) {
      throw std::invalid_argument("sampling plan: " + path + ":" +
                                  std::to_string(lineno) +
                                  ": expected a record index, got '" + tok + "'");
    }
  }
  plan.validate();
  return plan;
}

void SamplingPlan::validate() const {
  if (window_records == 0) {
    throw std::invalid_argument("sampling plan: window_records must be >= 1");
  }
  if (starts.empty()) {
    throw std::invalid_argument("sampling plan: no sample windows (need K >= 1 and a "
                                "non-empty trace)");
  }
  for (std::size_t i = 0; i < starts.size(); ++i) {
    if (i != 0 && starts[i] < starts[i - 1] + window_records) {
      throw std::invalid_argument(
          "sampling plan: window starts must be ascending and non-overlapping "
          "(start[" + std::to_string(i) + "] = " + std::to_string(starts[i]) +
          " < previous start + W = " +
          std::to_string(starts[i - 1] + window_records) + ")");
    }
  }
  if (total_records != 0 && starts.back() >= total_records) {
    throw std::invalid_argument("sampling plan: start " + std::to_string(starts.back()) +
                                " is past the end of the trace (" +
                                std::to_string(total_records) + " records)");
  }
}

SamplingPlan plan_from_config(const core::CoreConfig& cfg, const trace::TraceSource& src) {
  const std::uint64_t total = src.total_records();
  if (total == 0) {
    throw std::invalid_argument(
        "sampled simulation needs the trace length up front; this source cannot "
        "report it (live generator or v1 container) — use a prepared .rsim trace");
  }
  return SamplingPlan::uniform(total, cfg.sample.windows, cfg.sample.window_insts,
                               cfg.sample.warmup_insts);
}

namespace {

MetricEstimate estimate(const std::vector<double>& xs) {
  MetricEstimate e;
  if (xs.empty()) return e;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  e.mean = sum / static_cast<double>(xs.size());
  if (xs.size() < 2) return e;
  double ss = 0.0;
  for (const double x : xs) ss += (x - e.mean) * (x - e.mean);
  const double sd = std::sqrt(ss / static_cast<double>(xs.size() - 1));
  e.ci95 = 1.96 * sd / std::sqrt(static_cast<double>(xs.size()));
  return e;
}

}  // namespace

SampledResult run_sampled(const core::CoreConfig& cfg, trace::TraceSource& src,
                          const SamplingPlan& plan, core::IntervalRecorder* intervals) {
  plan.validate();

  trace::SegmentedTraceSource seg(src);
  core::ReSimEngine eng(cfg, seg);
  if (intervals != nullptr) eng.attach_interval_recorder(intervals);

  SampledResult out;
  out.plan_total_records = plan.total_records;
  out.windows.reserve(plan.starts.size());

  for (const std::uint64_t start : plan.starts) {
    // The previous window may already sit past this start (degenerate
    // plans); never seek backwards, just shrink warmup/window to fit.
    std::uint64_t pos = seg.inner_position();
    const std::uint64_t warmup_from =
        start > plan.warmup_records ? start - plan.warmup_records : 0;
    if (warmup_from > pos) {
      seg.skip_gap(warmup_from - pos);
      pos = seg.inner_position();
    }

    // Functional warmup up to the window start (shrunk when the gap was
    // shorter than U).
    std::uint64_t warmup_done = 0;
    if (start > pos) {
      seg.open_segment(start - pos);
      warmup_done = eng.functional_warmup(start - pos);
      seg.close_segment();
      out.warmup_records += warmup_done;
    }

    // Detailed window: run to the segment's end AND pipeline drain, so
    // every fetched record commits or squashes inside its own window.
    const auto snap0 = eng.stats_snapshot();
    const std::uint64_t committed0 = eng.committed();
    const std::uint64_t cycles0 = eng.cycle();
    const std::uint64_t consumed0 = seg.records_consumed();

    seg.open_segment(plan.window_records);
    while (eng.step_major_cycle()) {
    }
    seg.close_segment();

    const auto d = StatsRegistry::delta(eng.stats_snapshot(), snap0);
    SampledWindow w;
    w.start = start;
    w.records = seg.records_consumed() - consumed0;
    w.warmup_used = warmup_done;
    w.committed = eng.committed() - committed0;
    w.cycles = eng.cycle() - cycles0;
    w.branches = d.value("commit.branches");
    w.mispredicts = d.value("fetch.mispredicts");
    w.il1_misses = d.value("il1.misses");
    w.dl1_misses = d.value("dl1.misses");
    out.detailed_records += w.records;
    if (w.records != 0) out.windows.push_back(w);
  }

  eng.flush_intervals();
  out.result = eng.result();
  out.skipped_records = seg.inner_position() - seg.records_consumed();

  std::vector<double> ipc_xs;
  std::vector<double> mpki_xs;
  std::vector<double> bmpki_xs;
  ipc_xs.reserve(out.windows.size());
  mpki_xs.reserve(out.windows.size());
  bmpki_xs.reserve(out.windows.size());
  for (const auto& w : out.windows) {
    ipc_xs.push_back(w.ipc());
    mpki_xs.push_back(w.mpki());
    bmpki_xs.push_back(w.branch_mpki());
  }
  out.ipc = estimate(ipc_xs);
  out.mpki = estimate(mpki_xs);
  out.branch_mpki = estimate(bmpki_xs);
  return out;
}

core::SimResult run_engine(const core::CoreConfig& cfg, trace::TraceSource& src) {
  if (cfg.sample.windows == 0) {
    return core::ReSimEngine(cfg, src).run();
  }
  return run_sampled(cfg, src, plan_from_config(cfg, src)).result;
}

}  // namespace resim::driver
