// Commit stage (paper §III): "Commit commits the oldest RB entry
// releasing Store Operations to memory, if a memory write port is
// available, and updates the Branch Predictor in case of branch."
//
// Branch resolution happens here (§V.A: "the branch resolution point at
// Commit"): committing a mispredicted branch squashes every in-flight
// tagged instruction, discards the unfetched remainder of the wrong-path
// block and redirects fetch with the misspeculation penalty.
#include "core/engine.hpp"

#include <stdexcept>

namespace resim::core {

CommitStats::CommitStats(StatsRegistry& reg)
    : insts(reg.counter("commit.insts")),
      loads(reg.counter("commit.loads")),
      stores(reg.counter("commit.stores")),
      branches(reg.counter("commit.branches")),
      store_hits(reg.counter("commit.store_hits")),
      store_misses(reg.counter("commit.store_misses")),
      write_port_stalls(reg.counter("commit.write_port_stalls")),
      squashes(reg.counter("commit.squashes")),
      squashed_insts(reg.counter("commit.squashed_insts")),
      discarded_tagged(reg.counter("fetch.discarded_tagged")) {}


void ReSimEngine::stage_commit() {
  for (unsigned slot = 0; slot < cfg_.width; ++slot) {
    if (rob_.empty()) break;
    const int head_slot = rob_.head_slot();
    RobEntry& e = rob_.head();
    if (!e.completed) break;  // in-order commit

    if (e.fi.wrong_path()) {
      // A wrong-path instruction can only reach the head after its
      // mispredicted branch committed — and that squashes the window.
      throw std::logic_error("ReSimEngine: wrong-path instruction at ROB head");
    }

    if (e.is_store()) {
      // Stores drain to memory at commit and need a write port
      // (§III/§IV.A: "D-Cache is also accessed when store instructions
      // are committed").
      if (write_ports_used_ >= cfg_.mem_write_ports) {
        cstat_.write_port_stalls.add();
        break;
      }
      ++write_ports_used_;
      const auto res = mem_.dwrite(lsq_.entry(e.lsq_slot).addr);
      (res.hit ? cstat_.store_hits : cstat_.store_misses).add();
    }

    // Retire.
    if (e.lsq_slot >= 0) {
      if (lsq_.entry(lsq_.head_slot()).rob_slot != head_slot) {
        throw std::logic_error("ReSimEngine: LSQ/ROB commit order mismatch");
      }
      lsq_.pop_head();
    }
    rename_.clear_if(e.fi.rec.out, head_slot);

    ++committed_;
    last_commit_cycle_ = cycle_;
    cstat_.insts.add();
    if (e.is_mem()) (e.is_store() ? cstat_.stores : cstat_.loads).add();

    const bool was_branch = e.is_branch();
    const auto outcome = e.fi.outcome;
    const FetchedInst fi = e.fi;  // copy before pop invalidates the entry
    rob_.pop_head();

    if (was_branch) {
      cstat_.branches.add();
      const Addr actual_next = fi.rec.taken ? fi.rec.target : fi.pc + kInstBytes;
      bp_.update_commit(fi.pc, fi.rec.ctrl, fi.rec.taken, actual_next, fi.pred);
      if (outcome == bpred::Outcome::kMispredict) {
        squash_and_redirect(actual_next);
        break;  // the squash empties the window; nothing further commits
      }
    }
  }
}

}  // namespace resim::core
