// Issue stage (paper §III):
//
//   "The Issue stage examines the ready instructions and schedules them
//    if there are available functional units. Load operations marked as
//    ready by Lsq_refresh are issued and a read port is allocated if
//    their value has not been forwarded in the LSQ. Issue also schedules
//    a Writeback event."
//
// Scheduling is oldest-first over the ROB with a total width of N slots
// per cycle. Memory operations take two issue steps: address generation
// on an ALU, then (loads) the cache access once Lsq_refresh marks them
// ready. In the Optimized pipeline, slot 0 may not hold a load memory
// access (§IV.B) — non-load candidates are preferred for slot 0 and, if
// none exists, slot 0 stays empty.
#include "core/engine.hpp"

#include <vector>

namespace resim::core {

namespace {

enum class CandKind : std::uint8_t { kFuOp, kAgen, kLoadMem };

struct Candidate {
  int rob_slot;
  CandKind kind;
};

}  // namespace

void ReSimEngine::stage_issue() {
  // Collect issue candidates oldest-first against begin-of-stage state.
  std::vector<Candidate> cands;
  cands.reserve(rob_.size());
  for (unsigned i = 0; i < rob_.size(); ++i) {
    const int slot = rob_.slot_at(i);
    const RobEntry& e = rob_.entry(slot);
    if (e.completed || e.dispatched_at >= cycle_) continue;

    if (e.is_mem()) {
      // Address generation needs only the base register (in1); a store's
      // data register (in2) is tracked separately (STA/STD split), so an
      // in-flight store with late data does not hide its address from
      // Lsq_refresh's dependence checks.
      if (!e.agen_issued && e.src_rob[0] < 0) {
        cands.push_back({slot, CandKind::kAgen});
      } else if (e.is_load() && !e.issued) {
        const LsqEntry& m = lsq_.entry(e.lsq_slot);
        if (m.mem_ready && !m.mem_issued) cands.push_back({slot, CandKind::kLoadMem});
      }
    } else if (!e.issued && e.src_pending == 0) {
      cands.push_back({slot, CandKind::kFuOp});
    }
  }

  // Optimized pipeline: if the oldest candidate is a load memory access,
  // pull the first non-load candidate into slot 0 (ages otherwise kept).
  if (!sched_.load_allowed_in_slot0() && !cands.empty() &&
      cands.front().kind == CandKind::kLoadMem) {
    for (std::size_t i = 1; i < cands.size(); ++i) {
      if (cands[i].kind != CandKind::kLoadMem) {
        const Candidate c = cands[i];
        cands.erase(cands.begin() + static_cast<std::ptrdiff_t>(i));
        cands.insert(cands.begin(), c);
        break;
      }
    }
  }

  unsigned used_slots = 0;
  for (const Candidate& c : cands) {
    if (used_slots >= cfg_.width) break;
    RobEntry& e = rob_.entry(c.rob_slot);

    switch (c.kind) {
      case CandKind::kFuOp: {
        // Branches and O-format ops bind their functional-unit class.
        const trace::OtherFu fu =
            e.is_branch() ? trace::OtherFu::kAlu : e.fi.rec.fu;
        const auto lat = fu_.try_issue(fu, cycle_);
        if (!lat) {
          stats_.counter("issue.fu_stalls").add();
          continue;
        }
        e.issued = true;
        e.complete_at = cycle_ + *lat;
        ++used_slots;
        stats_.counter("issue.ops").add();
        break;
      }

      case CandKind::kAgen: {
        // Effective-address computation occupies an ALU for one op.
        const auto lat = fu_.try_issue_alu(cycle_);
        if (!lat) {
          stats_.counter("issue.fu_stalls").add();
          continue;
        }
        e.agen_issued = true;
        lsq_.entry(e.lsq_slot).addr_ready_at = cycle_ + *lat;
        ++used_slots;
        stats_.counter("issue.agen").add();
        break;
      }

      case CandKind::kLoadMem: {
        // Optimized pipeline: no load in the major cycle's first slot.
        // With only load candidates ready, slot 0 stays empty and loads
        // occupy slots 1..N-1.
        if (used_slots == 0 && !sched_.load_allowed_in_slot0()) {
          stats_.counter("issue.slot0_load_skips").add();
          used_slots = 1;
        }
        LsqEntry& m = lsq_.entry(e.lsq_slot);
        if (m.forwarded) {
          // Value satisfied inside the LSQ: one-cycle completion, no port.
          m.mem_issued = true;
          e.issued = true;
          e.complete_at = cycle_ + 1;
          ++used_slots;
          stats_.counter("issue.loads_forwarded").add();
        } else {
          if (read_ports_used_ >= cfg_.mem_read_ports) {
            stats_.counter("issue.read_port_stalls").add();
            continue;
          }
          ++read_ports_used_;
          const auto res = mem_.dread(m.addr);
          m.mem_issued = true;
          e.issued = true;
          e.complete_at = cycle_ + res.latency;
          ++used_slots;
          stats_.counter(res.hit ? "issue.load_hits" : "issue.load_misses").add();
        }
        break;
      }
    }
  }
}

}  // namespace resim::core
