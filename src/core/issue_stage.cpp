// Issue stage (paper §III):
//
//   "The Issue stage examines the ready instructions and schedules them
//    if there are available functional units. Load operations marked as
//    ready by Lsq_refresh are issued and a read port is allocated if
//    their value has not been forwarded in the LSQ. Issue also schedules
//    a Writeback event."
//
// Scheduling is oldest-first over the ROB with a total width of N slots
// per cycle. Memory operations take two issue steps: address generation
// on an ALU, then (loads) the cache access once Lsq_refresh marks them
// ready. In the Optimized pipeline, slot 0 may not hold a load memory
// access (§IV.B) — non-load candidates are preferred for slot 0 and, if
// none exists, slot 0 stays empty.
#include "core/engine.hpp"

#include <vector>

namespace resim::core {

IssueStats::IssueStats(StatsRegistry& reg)
    : ops(reg.counter("issue.ops")),
      agen(reg.counter("issue.agen")),
      fu_stalls(reg.counter("issue.fu_stalls")),
      slot0_load_skips(reg.counter("issue.slot0_load_skips")),
      loads_forwarded(reg.counter("issue.loads_forwarded")),
      read_port_stalls(reg.counter("issue.read_port_stalls")),
      load_hits(reg.counter("issue.load_hits")),
      load_misses(reg.counter("issue.load_misses")) {}

void ReSimEngine::stage_issue() {
  // Collect issue candidates oldest-first against begin-of-stage state.
  // issue_cands_ is a member scratch buffer (capacity reserved once in
  // the constructor): clearing keeps the allocation across cycles.
  std::vector<IssueCand>& cands = issue_cands_;
  cands.clear();
  for (unsigned i = 0; i < rob_.size(); ++i) {
    const int slot = rob_.slot_at(i);
    const RobEntry& e = rob_.entry(slot);
    if (e.completed || e.dispatched_at >= cycle_) continue;

    if (e.is_mem()) {
      // Address generation needs only the base register (in1); a store's
      // data register (in2) is tracked separately (STA/STD split), so an
      // in-flight store with late data does not hide its address from
      // Lsq_refresh's dependence checks.
      if (!e.agen_issued && e.src_rob[0] < 0) {
        cands.push_back({slot, IssueCandKind::kAgen});
      } else if (e.is_load() && !e.issued) {
        const LsqEntry& m = lsq_.entry(e.lsq_slot);
        if (m.mem_ready && !m.mem_issued) cands.push_back({slot, IssueCandKind::kLoadMem});
      }
    } else if (!e.issued && e.src_pending == 0) {
      cands.push_back({slot, IssueCandKind::kFuOp});
    }
  }

  // Optimized pipeline: if the oldest candidate is a load memory access,
  // pull the first non-load candidate into slot 0 (ages otherwise kept).
  if (!sched_.load_allowed_in_slot0() && !cands.empty() &&
      cands.front().kind == IssueCandKind::kLoadMem) {
    for (std::size_t i = 1; i < cands.size(); ++i) {
      if (cands[i].kind != IssueCandKind::kLoadMem) {
        const IssueCand c = cands[i];
        cands.erase(cands.begin() + static_cast<std::ptrdiff_t>(i));
        cands.insert(cands.begin(), c);
        break;
      }
    }
  }

  unsigned used_slots = 0;
  for (const IssueCand& c : cands) {
    if (used_slots >= cfg_.width) break;
    RobEntry& e = rob_.entry(c.rob_slot);

    switch (c.kind) {
      case IssueCandKind::kFuOp: {
        // Branches and O-format ops bind their functional-unit class.
        const trace::OtherFu fu =
            e.is_branch() ? trace::OtherFu::kAlu : e.fi.rec.fu;
        const auto lat = fu_.try_issue(fu, cycle_);
        if (!lat) {
          istat_.fu_stalls.add();
          continue;
        }
        e.issued = true;
        e.complete_at = cycle_ + *lat;
        ++used_slots;
        istat_.ops.add();
        break;
      }

      case IssueCandKind::kAgen: {
        // Effective-address computation occupies an ALU for one op.
        const auto lat = fu_.try_issue_alu(cycle_);
        if (!lat) {
          istat_.fu_stalls.add();
          continue;
        }
        e.agen_issued = true;
        lsq_.entry(e.lsq_slot).addr_ready_at = cycle_ + *lat;
        ++used_slots;
        istat_.agen.add();
        break;
      }

      case IssueCandKind::kLoadMem: {
        // Optimized pipeline: no load in the major cycle's first slot.
        // With only load candidates ready, slot 0 stays empty and loads
        // occupy slots 1..N-1.
        if (used_slots == 0 && !sched_.load_allowed_in_slot0()) {
          istat_.slot0_load_skips.add();
          used_slots = 1;
        }
        LsqEntry& m = lsq_.entry(e.lsq_slot);
        if (m.forwarded) {
          // Value satisfied inside the LSQ: one-cycle completion, no port.
          m.mem_issued = true;
          e.issued = true;
          e.complete_at = cycle_ + 1;
          ++used_slots;
          istat_.loads_forwarded.add();
        } else {
          if (read_ports_used_ >= cfg_.mem_read_ports) {
            istat_.read_port_stalls.add();
            continue;
          }
          ++read_ports_used_;
          const auto res = mem_.dread(m.addr);
          m.mem_issued = true;
          e.issued = true;
          e.complete_at = cycle_ + res.latency;
          ++used_slots;
          (res.hit ? istat_.load_hits : istat_.load_misses).add();
        }
        break;
      }
    }
  }
}

}  // namespace resim::core
