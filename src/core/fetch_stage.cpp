// Fetch stage (paper §III):
//
//   "Fetch is the simulator's front end, fetching instructions from the
//    trace until a control flow bubble is encountered or Instruction
//    Fetch Queue (IFQ) is full. It performs target resolution of control
//    flow instructions and checks for misfetches ... On misfetch PC is
//    set to the next sequential address, a misfetch delayed penalty is
//    imposed. During Fetch Instruction Cache is also accessed."
//
// Mis-speculation (§V.A): on a direction mispredict, fetch follows the
// tagged wrong-path block; when the block is exhausted (or absent —
// predictor disagreement with the trace generator) fetch stalls until the
// branch resolves at Commit.
#include "core/engine.hpp"

namespace resim::core {

FetchStats::FetchStats(StatsRegistry& reg)
    : insts(reg.counter("fetch.insts")),
      branches(reg.counter("fetch.branches")),
      wrong_path_insts(reg.counter("fetch.wrong_path_insts")),
      pc_resyncs(reg.counter("fetch.pc_resyncs")),
      taken_breaks(reg.counter("fetch.taken_breaks")),
      misfetches(reg.counter("fetch.misfetches")),
      mispredicts(reg.counter("fetch.mispredicts")),
      mispredict_without_block(reg.counter("fetch.mispredict_without_block")),
      skipped_tagged(reg.counter("fetch.skipped_tagged")),
      icache_miss_stalls(reg.counter("fetch.icache_miss_stalls")),
      penalty_stall_cycles(reg.counter("fetch.penalty_stall_cycles")),
      resolution_stall_cycles(reg.counter("fetch.resolution_stall_cycles")),
      ifq_full(reg.counter("fetch.ifq_full")) {}

// --- columnar fast-path helpers --------------------------------------------

void ReSimEngine::flush_view() {
  if (view_.batch != nullptr) {
    if (view_pos_ != 0) src_.consume_view(view_pos_);
    view_ = {};
    view_pos_ = 0;
    view_mat_ = ~std::size_t{0};
  }
}

const trace::TraceRecord* ReSimEngine::fetch_peek() {
  if (view_pos_ == view_.count) {
    flush_view();
    view_ = src_.fetch_view();
    if (view_.count == 0) return src_.peek();
  }
  if (view_mat_ != view_pos_) {
    view_.batch->get(view_.first + view_pos_, view_rec_);
    view_mat_ = view_pos_;
  }
  return &view_rec_;
}

trace::TraceRecord ReSimEngine::fetch_next() {
  if (view_pos_ == view_.count) {
    flush_view();
    view_ = src_.fetch_view();
    if (view_.count == 0) return src_.next();
  }
  if (view_mat_ != view_pos_) {
    view_.batch->get(view_.first + view_pos_, view_rec_);
    view_mat_ = view_pos_;
  }
  ++view_pos_;
  return view_rec_;
}

void ReSimEngine::stage_fetch() {
  fetch_cycle();
  // Settle the view before any other stage (or finished()/result())
  // observes the source: counters and the cursor are exact here.
  flush_view();
}

void ReSimEngine::fetch_cycle() {
  if (cycle_ < fetch_stall_until_) {
    fstat_.penalty_stall_cycles.add();
    return;
  }
  if (awaiting_resolution_) {
    fstat_.resolution_stall_cycles.add();
    return;
  }

  for (unsigned slot = 0; slot < cfg_.width; ++slot) {
    if (ifq_.full()) {
      fstat_.ifq_full.add();
      break;
    }

    // Skip stale tagged blocks: the trace generator mispredicted where our
    // commit-time-trained predictor did not (DESIGN.md §5).
    while (!wrong_path_active_ && fetch_peek() != nullptr && fetch_peek()->wrong_path) {
      (void)fetch_next();
      fstat_.skipped_tagged.add();
    }

    const trace::TraceRecord* rec = fetch_peek();
    if (rec == nullptr) {
      if (wrong_path_active_) {
        // Trace ended inside a tagged block: wait for branch resolution.
        wrong_path_active_ = false;
        awaiting_resolution_ = true;
      }
      break;
    }

    if (wrong_path_active_ && !rec->wrong_path) {
      // Tagged block exhausted before resolution: fetch has nothing more
      // to do until Commit redirects it.
      wrong_path_active_ = false;
      awaiting_resolution_ = true;
      break;
    }

    // --- wrong-path fetch --------------------------------------------------
    if (wrong_path_active_) {
      const auto ic = mem_.ifetch(wrong_path_pc_);
      if (!ic.hit) {
        fstat_.icache_miss_stalls.add();
        fetch_stall_until_ = cycle_ + ic.latency;
        break;
      }
      FetchedInst fi;
      fi.rec = fetch_next();
      fi.pc = wrong_path_pc_;
      fi.seq = next_seq_++;
      fi.fetched_at = cycle_;
      wrong_path_pc_ += kInstBytes;
      ifq_.push(fi);
      ++fetched_;
      ++wrong_path_fetched_;
      fstat_.insts.add();
      fstat_.wrong_path_insts.add();
      continue;
    }

    // --- correct-path fetch --------------------------------------------------
    // Branch records carry their PC; resync the implicit PC tracker if the
    // stream and our bookkeeping ever disagree.
    Addr pc = fetch_pc_;
    if (rec->is_branch() && rec->pc != pc) {
      fstat_.pc_resyncs.add();
      pc = rec->pc;
    }

    const auto ic = mem_.ifetch(pc);
    if (!ic.hit) {
      // Blocking I-cache: the line fills, fetch retries after the miss
      // latency (the access above installed the tags).
      fstat_.icache_miss_stalls.add();
      fetch_stall_until_ = cycle_ + ic.latency;
      break;
    }

    FetchedInst fi;
    fi.rec = fetch_next();
    fi.pc = pc;
    fi.seq = next_seq_++;
    fi.fetched_at = cycle_;

    if (!fi.rec.is_branch()) {
      ifq_.push(fi);
      ++fetched_;
      fstat_.insts.add();
      fetch_pc_ = pc + kInstBytes;
      continue;
    }

    // Control flow: predict, classify, steer.
    const Addr fallthrough = pc + kInstBytes;
    const Addr actual_next = fi.rec.taken ? fi.rec.target : fallthrough;
    fi.pred = bp_.predict(pc, fi.rec.ctrl, fallthrough, fi.rec.taken, actual_next);
    fi.outcome = bpred::BranchPredictorUnit::classify(fi.pred, fi.rec.taken, actual_next);

    ifq_.push(fi);
    ++fetched_;
    fstat_.insts.add();
    fstat_.branches.add();

    switch (fi.outcome) {
      case bpred::Outcome::kCorrect:
        fetch_pc_ = actual_next;
        if (fi.pred.dir_taken) {
          // Control-flow bubble: a predicted-taken branch ends the group.
          fstat_.taken_breaks.add();
          slot = cfg_.width;  // break out after accounting
        }
        break;

      case bpred::Outcome::kMisfetch:
        // Direction right, target wrong: fetch went sequential; the front
        // end recovers after the misfetch delayed penalty and resumes on
        // the correct path.
        fstat_.misfetches.add();
        fetch_pc_ = actual_next;
        fetch_stall_until_ = cycle_ + 1 + cfg_.misfetch_penalty;
        slot = cfg_.width;
        break;

      case bpred::Outcome::kMispredict: {
        fstat_.mispredicts.add();
        mispredict_inflight_ = true;
        resume_pc_ = actual_next;
        const trace::TraceRecord* nxt = fetch_peek();
        if (nxt != nullptr && nxt->wrong_path) {
          // Follow the tagged wrong-path block down our predicted path.
          wrong_path_active_ = true;
          wrong_path_pc_ = fi.pred.next_pc;
        } else {
          // No block available (generator predicted correctly here):
          // nothing to fetch until resolution.
          awaiting_resolution_ = true;
          fstat_.mispredict_without_block.add();
        }
        slot = cfg_.width;
        break;
      }
    }
  }
}

}  // namespace resim::core
