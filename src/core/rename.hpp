// Rename Table: architectural register -> producing ROB slot
// (paper §III: "Dispatch ... accesses the Rename Table").
#ifndef RESIM_CORE_RENAME_H
#define RESIM_CORE_RENAME_H

#include <array>

#include "common/types.hpp"

namespace resim::core {

class RenameTable {
 public:
  /// Producing ROB slot of `r`, or -1 when the architectural value is
  /// ready in the register file. r0 and kNoReg are always ready.
  [[nodiscard]] int lookup(Reg r) const {
    if (r == kNoReg || r == kZeroReg) return -1;
    return map_[r];
  }

  /// Dispatch: `slot` becomes the newest producer of `r`.
  void set(Reg r, int slot) {
    if (r != kNoReg && r != kZeroReg) map_[r] = slot;
  }

  /// Commit: clear the mapping iff it still names the committing slot.
  void clear_if(Reg r, int slot) {
    if (r != kNoReg && r != kZeroReg && map_[r] == slot) map_[r] = -1;
  }

  /// Squash recovery: after a mis-speculation squash the ROB is empty, so
  /// every mapping is stale.
  void clear() { map_.fill(-1); }

  RenameTable() { clear(); }

 private:
  std::array<int, kNumArchRegs> map_{};
};

}  // namespace resim::core

#endif  // RESIM_CORE_RENAME_H
