#include "core/lsq.hpp"

#include <stdexcept>

#include "common/numeric.hpp"

namespace resim::core {

Lsq::Lsq(unsigned capacity) : entries_(capacity) {
  require(capacity >= 1, "Lsq: capacity >= 1");
}

int Lsq::allocate() {
  if (full()) throw std::logic_error("Lsq::allocate on full LSQ");
  const unsigned slot = (head_ + count_) % entries_.size();
  ++count_;
  entries_[slot] = LsqEntry{};
  return static_cast<int>(slot);
}

int Lsq::slot_at(unsigned age_index) const {
  if (age_index >= count_) throw std::out_of_range("Lsq::slot_at");
  return static_cast<int>((head_ + age_index) % entries_.size());
}

void Lsq::pop_head() {
  if (empty()) throw std::logic_error("Lsq::pop_head on empty LSQ");
  head_ = (head_ + 1) % static_cast<unsigned>(entries_.size());
  --count_;
}

void Lsq::clear() {
  head_ = 0;
  count_ = 0;
}

}  // namespace resim::core
