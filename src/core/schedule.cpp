#include "core/schedule.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/numeric.hpp"

namespace resim::core {

const char* variant_name(PipelineVariant v) {
  switch (v) {
    case PipelineVariant::kSimple: return "simple";
    case PipelineVariant::kEfficient: return "efficient";
    case PipelineVariant::kOptimized: return "optimized";
  }
  return "?";
}

const char* stage_unit_name(StageUnit u) {
  switch (u) {
    case StageUnit::kFetch: return "F";
    case StageUnit::kICacheAccess: return "ICA";
    case StageUnit::kDecouple: return "DPL";
    case StageUnit::kDispatch: return "D";
    case StageUnit::kIssue: return "IS";
    case StageUnit::kDCacheAccess: return "CA";
    case StageUnit::kWriteback: return "WB";
    case StageUnit::kLsqRefresh: return "LSQR";
    case StageUnit::kCommit: return "C";
    case StageUnit::kStoreCacheAccess: return "SCA";
    case StageUnit::kBookkeep: return "BK";
  }
  return "?";
}

unsigned PipelineSchedule::latency_of(PipelineVariant v, unsigned width) {
  switch (v) {
    case PipelineVariant::kSimple: return 2 * width + 3;     // Figure 2
    case PipelineVariant::kEfficient: return width + 4;      // Figure 3
    case PipelineVariant::kOptimized: return width + 3;      // Figure 4
  }
  throw std::invalid_argument("latency_of: bad variant");
}

PipelineSchedule PipelineSchedule::make(PipelineVariant v, unsigned width) {
  require(width >= 1 && width <= 16, "PipelineSchedule: width in [1,16]");
  PipelineSchedule s(v, width);
  const unsigned L = latency_of(v, width);
  s.minors_.assign(L, {});
  const int n = static_cast<int>(width);

  auto put = [&s](unsigned minor, StageUnit u, int slot) {
    s.minors_.at(minor).push_back(MicroOp{u, slot});
  };

  // --- critical dependence chain ------------------------------------------
  switch (v) {
    case PipelineVariant::kSimple:
      // WB_0..WB_{N-1} | LSQR | IS_0..IS_{N-1} with CA one behind | BK.
      for (int k = 0; k < n; ++k) put(static_cast<unsigned>(k), StageUnit::kWriteback, k);
      put(width, StageUnit::kLsqRefresh, -1);
      for (int k = 0; k < n; ++k) {
        put(width + 1 + static_cast<unsigned>(k), StageUnit::kIssue, k);
        put(width + 2 + static_cast<unsigned>(k), StageUnit::kDCacheAccess, k);
      }
      put(L - 1, StageUnit::kBookkeep, -1);
      break;

    case PipelineVariant::kEfficient:
      // LSQR | IS_k at 1+k | CA_k at 2+k | WB_k at 3+k | BK.
      put(0, StageUnit::kLsqRefresh, -1);
      for (int k = 0; k < n; ++k) {
        put(1 + static_cast<unsigned>(k), StageUnit::kIssue, k);
        put(2 + static_cast<unsigned>(k), StageUnit::kDCacheAccess, k);
        put(3 + static_cast<unsigned>(k), StageUnit::kWriteback, k);
      }
      put(L - 1, StageUnit::kBookkeep, -1);
      break;

    case PipelineVariant::kOptimized:
      // LSQR || IS_0 (no load in slot 0) | IS_k at k | CA_k at 1+k |
      // WB_k at 2+k | BK.
      put(0, StageUnit::kLsqRefresh, -1);
      for (int k = 0; k < n; ++k) {
        put(static_cast<unsigned>(k), StageUnit::kIssue, k);
        put(1 + static_cast<unsigned>(k), StageUnit::kDCacheAccess, k);
        put(2 + static_cast<unsigned>(k), StageUnit::kWriteback, k);
      }
      put(L - 1, StageUnit::kBookkeep, -1);
      break;
  }

  // --- overlapped lanes (identical across variants) -------------------------
  // Fetch lane: F_k at minors k, then the I-cache access and the decouple
  // transfer; dispatch lane one slot behind fetch; commit lane with the
  // store cache access after the last commit slot.
  for (int k = 0; k < n; ++k) put(static_cast<unsigned>(k), StageUnit::kFetch, k);
  put(std::min(L - 1, width), StageUnit::kICacheAccess, -1);
  put(std::min(L - 1, width + 1), StageUnit::kDecouple, -1);
  for (int k = 0; k < n; ++k) {
    put(std::min(L - 1, 1 + static_cast<unsigned>(k)), StageUnit::kDispatch, k);
  }
  for (int k = 0; k < n; ++k) put(static_cast<unsigned>(k), StageUnit::kCommit, k);
  put(std::min(L - 1, width), StageUnit::kStoreCacheAccess, -1);

  s.validate();
  return s;
}

int PipelineSchedule::find(StageUnit u, int slot) const {
  for (unsigned m = 0; m < minors_.size(); ++m) {
    for (const MicroOp& op : minors_[m]) {
      if (op.unit == u && op.slot == slot) return static_cast<int>(m);
    }
  }
  return -1;
}

void PipelineSchedule::validate() const {
  auto fail = [](const std::string& what) { throw std::logic_error("PipelineSchedule: " + what); };

  if (latency() != latency_of(variant_, width_)) fail("latency formula violated");

  const int n = static_cast<int>(width_);

  // Each serial stage unit processes at most one slot per minor cycle and
  // slots appear in order.
  for (StageUnit u : {StageUnit::kFetch, StageUnit::kDispatch, StageUnit::kIssue,
                      StageUnit::kWriteback, StageUnit::kCommit, StageUnit::kDCacheAccess}) {
    int prev = -1;
    for (int k = 0; k < n; ++k) {
      const int m = find(u, k);
      if (m < 0) fail("missing stage slot");
      if (m <= prev && !(u == StageUnit::kIssue && k == 0)) {
        // (Optimized IS_0 shares minor 0 with LSQR, still ordered.)
        fail("stage slots out of order");
      }
      prev = m;
    }
  }

  const int lsqr = find(StageUnit::kLsqRefresh, -1);
  const int bk = find(StageUnit::kBookkeep, -1);
  if (lsqr < 0 || bk < 0) fail("missing LSQR/BK");
  if (bk != static_cast<int>(latency()) - 1) fail("bookkeeping must be the last minor cycle");

  const int is0 = find(StageUnit::kIssue, 0);
  const int wb_last = find(StageUnit::kWriteback, n - 1);
  const int wb0 = find(StageUnit::kWriteback, 0);

  switch (variant_) {
    case PipelineVariant::kSimple:
      // Dependence chain: all WB before LSQR, LSQR before first Issue.
      if (!(wb_last < lsqr)) fail("simple: WB must precede Lsq_refresh");
      if (!(lsqr < is0)) fail("simple: Lsq_refresh must precede Issue");
      break;
    case PipelineVariant::kEfficient:
      if (!(lsqr < is0)) fail("efficient: Lsq_refresh must precede Issue");
      if (!(is0 < wb0)) fail("efficient: Issue minor-cycle precedes Writeback");
      break;
    case PipelineVariant::kOptimized:
      if (lsqr != is0) fail("optimized: Lsq_refresh must run in parallel with first Issue");
      if (!(is0 < wb0)) fail("optimized: Issue minor-cycle precedes Writeback");
      break;
  }

  // Load cache access follows its issue slot; cache access precedes the
  // writeback of the same slot (efficient/optimized: "a cache access
  // occurs before writeback").
  for (int k = 0; k < n; ++k) {
    const int is = find(StageUnit::kIssue, k);
    const int ca = find(StageUnit::kDCacheAccess, k);
    if (!(is < ca)) fail("cache access must follow its issue slot");
    if (variant_ != PipelineVariant::kSimple) {
      const int wb = find(StageUnit::kWriteback, k);
      if (!(ca < wb)) fail("cache access must precede writeback of the slot");
    }
  }
}

std::string PipelineSchedule::render() const {
  // Lane per unit class, column per minor cycle.
  const std::vector<StageUnit> lanes = {
      StageUnit::kFetch,    StageUnit::kDispatch,   StageUnit::kIssue,
      StageUnit::kDCacheAccess, StageUnit::kLsqRefresh, StageUnit::kWriteback,
      StageUnit::kCommit,   StageUnit::kBookkeep};

  std::map<StageUnit, std::vector<std::string>> grid;
  for (StageUnit u : lanes) grid[u].assign(latency(), "");
  auto cell_of = [&](StageUnit u) -> std::vector<std::string>* {
    switch (u) {
      case StageUnit::kICacheAccess: return &grid[StageUnit::kFetch];
      case StageUnit::kDecouple: return &grid[StageUnit::kFetch];
      case StageUnit::kStoreCacheAccess: return &grid[StageUnit::kCommit];
      default: {
        auto it = grid.find(u);
        return it == grid.end() ? nullptr : &it->second;
      }
    }
  };

  for (unsigned m = 0; m < latency(); ++m) {
    for (const MicroOp& op : minors_[m]) {
      auto* lane = cell_of(op.unit);
      if (lane == nullptr) continue;
      std::string label = stage_unit_name(op.unit);
      if (op.slot >= 0) label += std::to_string(op.slot);
      auto& cell = (*lane)[m];
      cell = cell.empty() ? label : cell + "+" + label;
    }
  }

  std::ostringstream os;
  os << "ReSim " << variant_name(variant_) << " pipeline, N=" << width_
     << ": major cycle = " << latency() << " minor cycles\n";
  os << std::left << std::setw(10) << "minor";
  for (unsigned m = 0; m < latency(); ++m) os << std::setw(9) << m;
  os << '\n';
  const std::map<StageUnit, std::string> lane_names = {
      {StageUnit::kFetch, "fetch"},       {StageUnit::kDispatch, "dispatch"},
      {StageUnit::kIssue, "issue"},       {StageUnit::kDCacheAccess, "d-cache"},
      {StageUnit::kLsqRefresh, "lsqref"}, {StageUnit::kWriteback, "wback"},
      {StageUnit::kCommit, "commit"},     {StageUnit::kBookkeep, "bookkeep"}};
  for (StageUnit u : lanes) {
    os << std::setw(10) << lane_names.at(u);
    for (unsigned m = 0; m < latency(); ++m) os << std::setw(9) << grid[u][m];
    os << '\n';
  }
  return os.str();
}

}  // namespace resim::core
