#include "core/rename.hpp"

// Header-only; anchors the library target.
namespace resim::core {}
