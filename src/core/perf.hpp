// FPGA performance model: converts a simulation's cycle counts into the
// paper's reported metrics.
//
//   simulation MIPS      = f_minor / L x IPC             (Table 1)
//   MIPS incl. wrong path= f_minor / L x records/cycle   (Table 3)
//   trace MByte/s        = consumed bits / wall time / 8 (Table 3)
//
// where f_minor is the device's minor-cycle clock (84 MHz Virtex-4,
// 105 MHz Virtex-5, paper §V.C) and L the major-cycle latency in minor
// cycles of the pipeline variant in use.
#ifndef RESIM_CORE_PERF_H
#define RESIM_CORE_PERF_H

#include "core/engine.hpp"

namespace resim::core {

struct ThroughputReport {
  double minor_clock_mhz = 0;
  unsigned major_latency = 0;     ///< minor cycles per major cycle
  double major_rate_mhz = 0;      ///< simulated cycles per wall second / 1e6
  double mips = 0;                ///< committed instructions / s / 1e6 (Table 1)
  double mips_processed = 0;      ///< trace records / s / 1e6 (Table 3)
  double trace_mbytes_per_sec = 0;///< input trace bandwidth (Table 3)
  double bits_per_inst = 0;       ///< average record size on the wire (Table 3)
  double sim_seconds = 0;         ///< wall time of the run on the FPGA
};

[[nodiscard]] ThroughputReport fpga_throughput(const SimResult& r, double minor_clock_mhz,
                                               unsigned major_latency);

}  // namespace resim::core

#endif  // RESIM_CORE_PERF_H
