// Interval statistics: a time series of per-interval IPC/MPKI rows
// (docs/SAMPLING.md §"Interval stats").
//
// The engine snapshots its cumulative stats every `interval_insts`
// committed instructions (a cold-path boundary event — the cycle loop
// itself only compares committed_ against a precomputed threshold) and
// hands the snapshot here. IntervalRecorder subtracts consecutive
// snapshots with StatsRegistry::delta() and keeps one compact row per
// interval; exporters render the rows as columnar CSV/JSON
// (driver/result_export.hpp).
#ifndef RESIM_CORE_INTERVAL_H
#define RESIM_CORE_INTERVAL_H

#include <cstdint>
#include <vector>

#include "common/stats.hpp"

namespace resim::core {

/// One interval of the time series. All event counts are interval-local
/// (deltas); `end_inst`/`end_cycle` are cumulative positions so plots
/// have an x-axis without re-summing.
struct IntervalRow {
  std::uint64_t index = 0;       ///< 0-based interval number
  std::uint64_t end_inst = 0;    ///< cumulative committed insts at the boundary
  std::uint64_t end_cycle = 0;   ///< cumulative major cycles at the boundary
  std::uint64_t committed = 0;   ///< insts committed in this interval
  std::uint64_t cycles = 0;      ///< major cycles elapsed in this interval
  std::uint64_t branches = 0;    ///< committed branches in this interval
  std::uint64_t mispredicts = 0; ///< resolved mispredicts in this interval
  std::uint64_t il1_misses = 0;  ///< L1-I misses in this interval (0 when perfect)
  std::uint64_t dl1_misses = 0;  ///< L1-D misses in this interval (0 when perfect)

  [[nodiscard]] double ipc() const {
    return cycles == 0 ? 0.0 : static_cast<double>(committed) / static_cast<double>(cycles);
  }
  /// Combined L1 misses per kilo-instruction (committed).
  [[nodiscard]] double mpki() const {
    return committed == 0 ? 0.0
                          : 1000.0 * static_cast<double>(il1_misses + dl1_misses) /
                                static_cast<double>(committed);
  }
  /// Branch mispredicts per kilo-instruction (committed).
  [[nodiscard]] double branch_mpki() const {
    return committed == 0
               ? 0.0
               : 1000.0 * static_cast<double>(mispredicts) / static_cast<double>(committed);
  }
};

/// Accumulates the interval time series for one engine run. Attached to
/// a ReSimEngine via attach_interval_recorder(); the engine calls
/// boundary() every `interval_insts` committed instructions and once
/// more at the end of the run (flush_intervals — the trailing partial
/// interval).
class IntervalRecorder {
 public:
  explicit IntervalRecorder(std::uint64_t interval_insts) : interval_insts_(interval_insts) {}

  [[nodiscard]] std::uint64_t interval_insts() const { return interval_insts_; }

  /// Close the current interval at a boundary. `cumulative` is the
  /// engine's full stats snapshot (core + predictor + caches merged);
  /// `committed`/`cycles` are the engine's cumulative counts. A call
  /// with no new committed instructions is a no-op, so flushing twice
  /// (or flushing exactly on a boundary) never emits an empty row.
  void boundary(const StatsSnapshot& cumulative, std::uint64_t committed, std::uint64_t cycles);

  [[nodiscard]] const std::vector<IntervalRow>& rows() const { return rows_; }

 private:
  std::uint64_t interval_insts_;
  StatsSnapshot last_{};
  std::uint64_t last_committed_ = 0;
  std::uint64_t last_cycles_ = 0;
  std::vector<IntervalRow> rows_;
};

}  // namespace resim::core

#endif  // RESIM_CORE_INTERVAL_H
