// Dispatch stage (paper §III): "Dispatch allocates Load/Store Queue (LSQ)
// and Reorder Buffer (RB) entries, and accesses the Rename Table."
//
// Instructions become dispatchable one cycle after fetch (the Decouple
// Buffer boundary); dispatch stalls on a full ROB or LSQ.
#include "core/engine.hpp"

namespace resim::core {

DispatchStats::DispatchStats(StatsRegistry& reg)
    : insts(reg.counter("dispatch.insts")),
      loads(reg.counter("dispatch.loads")),
      stores(reg.counter("dispatch.stores")),
      rob_full(reg.counter("dispatch.rob_full")),
      lsq_full(reg.counter("dispatch.lsq_full")) {}


void ReSimEngine::stage_dispatch() {
  for (unsigned slot = 0; slot < cfg_.width; ++slot) {
    if (ifq_.empty()) break;
    const FetchedInst& fi = ifq_.front();
    if (fi.fetched_at >= cycle_) break;  // decouple: fetched this very cycle

    if (rob_.full()) {
      dstat_.rob_full.add();
      break;
    }
    if (fi.rec.is_mem() && lsq_.full()) {
      dstat_.lsq_full.add();
      break;
    }

    FetchedInst inst = ifq_.pop();
    // Decode normalization: stores write no register. A malformed record
    // carrying a destination would otherwise rename a register to an
    // instruction that never broadcasts a result (stores complete through
    // Lsq_refresh, not Writeback) and strand its consumers.
    if (inst.rec.is_mem() && inst.rec.is_store) inst.rec.out = kNoReg;
    const int rob_slot = rob_.allocate();
    RobEntry& e = rob_.entry(rob_slot);
    e.fi = inst;
    e.dispatched_at = cycle_;

    // Rename-table read: source operands either have an in-flight
    // producer (pending until its writeback) or are architecturally ready.
    const Reg srcs[2] = {inst.rec.in1, inst.rec.in2};
    for (int k = 0; k < 2; ++k) {
      const int producer = rename_.lookup(srcs[k]);
      if (producer >= 0 && !rob_.entry(producer).completed) {
        e.src_rob[k] = producer;
        ++e.src_pending;
      }
    }

    // Rename-table write: this entry becomes the newest producer.
    rename_.set(inst.rec.out, rob_slot);

    if (inst.rec.is_mem()) {
      const int lsq_slot = lsq_.allocate();
      LsqEntry& m = lsq_.entry(lsq_slot);
      m.is_store = inst.rec.is_store;
      m.rob_slot = rob_slot;
      m.seq = inst.seq;
      m.addr = inst.rec.addr;
      e.lsq_slot = lsq_slot;
      (inst.rec.is_store ? dstat_.stores : dstat_.loads).add();
    }

    dstat_.insts.add();
  }
}

}  // namespace resim::core
