// ReSimEngine: the trace-driven, cycle-accurate timing engine
// (the paper's primary contribution, §III-§IV).
//
// One call to step_major_cycle() simulates one target-processor cycle.
// Stages execute in reverse pipeline order so each stage observes
// begin-of-cycle state, which reproduces the paper's documented timing
// semantics exactly:
//   * instructions woken by Writeback may issue in the same cycle
//     (§IV.A: "instructions waken up by their producer may be issued
//     during the same simulated cycle");
//   * instructions completing in cycle C become commit-eligible in C+1
//     (§IV.B: the flag that "prevents Commit from considering such
//     instructions within the same major cycle");
//   * instructions fetched in C dispatch no earlier than C+1 (the
//     Decouple Buffer between Fetch and Dispatch);
//   * the Optimized pipeline may not issue a load in slot 0 (§IV.B).
//
// Minor-cycle accounting: every major cycle costs schedule().latency()
// minor cycles (the paper's fixed-latency major cycle), which is what the
// FPGA performance model converts to wall-clock throughput.
#ifndef RESIM_CORE_ENGINE_H
#define RESIM_CORE_ENGINE_H

#include <cstdint>
#include <string>
#include <vector>

#include "bpred/unit.hpp"
#include "cache/memsys.hpp"
#include "common/fixed_queue.hpp"
#include "common/stats.hpp"
#include "core/config.hpp"
#include "core/fu.hpp"
#include "core/lsq.hpp"
#include "core/rename.hpp"
#include "core/rob.hpp"
#include "core/schedule.hpp"
#include "trace/reader.hpp"

namespace resim::core {

class IntervalRecorder;  // core/interval.hpp

// --- per-stage statistics structs ------------------------------------------
// Each stage resolves its counters ONCE at engine construction (the
// constructors live in the stage's own translation unit, next to the code
// that bumps them). The cycle loop then increments plain uint64_t slots
// through stable StatsRegistry handles instead of paying a string-keyed
// map lookup per event (docs/STATS.md). Resolution alone publishes
// nothing: a counter appears in reports only once an event touches it.

struct FetchStats {
  explicit FetchStats(StatsRegistry& reg);
  Counter& insts;
  Counter& branches;
  Counter& wrong_path_insts;
  Counter& pc_resyncs;
  Counter& taken_breaks;
  Counter& misfetches;
  Counter& mispredicts;
  Counter& mispredict_without_block;
  Counter& skipped_tagged;
  Counter& icache_miss_stalls;
  Counter& penalty_stall_cycles;
  Counter& resolution_stall_cycles;
  Counter& ifq_full;
};

struct DispatchStats {
  explicit DispatchStats(StatsRegistry& reg);
  Counter& insts;
  Counter& loads;
  Counter& stores;
  Counter& rob_full;
  Counter& lsq_full;
};

struct IssueStats {
  explicit IssueStats(StatsRegistry& reg);
  Counter& ops;
  Counter& agen;
  Counter& fu_stalls;
  Counter& slot0_load_skips;
  Counter& loads_forwarded;
  Counter& read_port_stalls;
  Counter& load_hits;
  Counter& load_misses;
};

struct LsqRefreshStats {
  explicit LsqRefreshStats(StatsRegistry& reg);
  Counter& stores_completed;
  Counter& loads_blocked;
  Counter& loads_forwarded;
  Counter& loads_ready;
};

struct WritebackStats {
  explicit WritebackStats(StatsRegistry& reg);
  Counter& broadcasts;
};

struct CommitStats {
  explicit CommitStats(StatsRegistry& reg);
  Counter& insts;
  Counter& loads;
  Counter& stores;
  Counter& branches;
  Counter& store_hits;
  Counter& store_misses;
  Counter& write_port_stalls;
  Counter& squashes;
  Counter& squashed_insts;
  Counter& discarded_tagged;  ///< "fetch.discarded_tagged" (squash path)
};

struct OccupancyStats {
  explicit OccupancyStats(StatsRegistry& reg);
  Occupancy& ifq;
  Occupancy& rob;
  Occupancy& lsq;
};

/// Final outcome of a simulation run.
struct SimResult {
  std::uint64_t committed = 0;          ///< correct-path instructions committed
  std::uint64_t fetched = 0;            ///< instructions entering the pipeline (incl. wrong path)
  std::uint64_t wrong_path_fetched = 0; ///< tagged instructions fetched
  std::uint64_t squashed = 0;           ///< wrong-path instructions squashed in-flight
  std::uint64_t major_cycles = 0;
  std::uint64_t minor_cycles = 0;
  std::uint64_t trace_records = 0;      ///< records consumed from the source
  std::uint64_t trace_bits = 0;         ///< wire bits consumed

  StatsRegistry stats;

  [[nodiscard]] double ipc() const {
    return major_cycles == 0 ? 0.0
                             : static_cast<double>(committed) / static_cast<double>(major_cycles);
  }
  /// Records processed per major cycle (Table 3 counts wrong-path work).
  [[nodiscard]] double processed_per_cycle() const {
    return major_cycles == 0
               ? 0.0
               : static_cast<double>(trace_records) / static_cast<double>(major_cycles);
  }
  [[nodiscard]] double bits_per_record() const {
    return trace_records == 0
               ? 0.0
               : static_cast<double>(trace_bits) / static_cast<double>(trace_records);
  }
};

class ReSimEngine {
 public:
  ReSimEngine(const CoreConfig& cfg, trace::TraceSource& source);

  // The stage stat structs hold references into stats_; a copied or
  // moved engine would keep counting into the source object's registry.
  ReSimEngine(const ReSimEngine&) = delete;
  ReSimEngine& operator=(const ReSimEngine&) = delete;

  /// Run until the trace is exhausted and the pipeline drains.
  SimResult run();

  /// Simulate one major cycle. Returns false iff the simulation had
  /// already finished (nothing was stepped).
  bool step_major_cycle();

  [[nodiscard]] bool finished();

  // --- observers (tests, benches) ----------------------------------------
  [[nodiscard]] Cycle cycle() const { return cycle_; }
  [[nodiscard]] std::uint64_t committed() const { return committed_; }
  [[nodiscard]] const CoreConfig& config() const { return cfg_; }
  [[nodiscard]] const PipelineSchedule& schedule() const { return sched_; }
  [[nodiscard]] const Rob& rob() const { return rob_; }
  [[nodiscard]] const Lsq& lsq() const { return lsq_; }
  [[nodiscard]] const StatsRegistry& stats() const { return stats_; }
  [[nodiscard]] const bpred::BranchPredictorUnit& predictor() const { return bp_; }
  [[nodiscard]] const cache::MemorySystem& memory() const { return mem_; }

  [[nodiscard]] SimResult result() const;

  // --- sampling / interval-stats plane (core/sampling.cpp) ----------------

  /// Full-view snapshot of the engine's statistics: core stats merged
  /// with predictor and cache stats, exactly the registry result()
  /// reports. Cold path (region/interval boundaries only).
  [[nodiscard]] StatsSnapshot stats_snapshot() const;

  /// Attach (or detach with nullptr) an interval recorder. While
  /// attached, every rec->interval_insts() committed instructions the
  /// engine closes an interval with a stats snapshot. The steady-state
  /// cost in the cycle loop is one integer compare; with no recorder the
  /// threshold is an unreachable sentinel.
  void attach_interval_recorder(IntervalRecorder* rec);

  /// Close the trailing partial interval (no-op if empty or detached).
  /// Call after the run drains; run()/result() do not do this implicitly
  /// because result() is const and repeatable.
  void flush_intervals();

  /// Functional warmup (docs/SAMPLING.md): consume up to `max_records`
  /// records from the source, updating the branch predictor and caches
  /// architecturally — no pipeline occupancy, no cycle accounting, no
  /// timing stats. Wrong-path (tagged) records are discarded untouched,
  /// exactly like the detailed squash path discards them. Requires an
  /// empty pipeline (throws std::logic_error otherwise). Returns the
  /// number of records consumed; leaves fetch_pc_ at the next record's
  /// implicit PC so a detailed window can start seamlessly.
  std::uint64_t functional_warmup(std::uint64_t max_records);

 private:
  // Stage implementations (one translation unit each).
  void stage_commit();
  void stage_writeback();
  void stage_lsq_refresh();
  void stage_issue();
  void stage_dispatch();
  void stage_fetch();

  // --- fetch's columnar fast path ------------------------------------------
  // When the source exposes SoA batch views (trace/batch.hpp), fetch
  // walks the batch with an index bump and an inlined column gather
  // instead of a virtual peek()+next() pair per record. The view is
  // flushed (consumed back into the source) at the end of every
  // stage_fetch call, so between stages/cycles the source's counters
  // and cursor are exact and every other src_ caller (finished(),
  // squash_and_redirect, result()) is oblivious to the batching.
  void fetch_cycle();                                 ///< stage_fetch body
  [[nodiscard]] const trace::TraceRecord* fetch_peek();
  trace::TraceRecord fetch_next();
  void flush_view();

  // Mis-speculation recovery at branch resolution (Commit).
  void squash_and_redirect(Addr resume_pc);

  void wake_dependents(int producer_slot);
  void sample_occupancy_and_advance();
  [[nodiscard]] bool pipeline_empty() const;

  CoreConfig cfg_;
  PipelineSchedule sched_;
  trace::TraceSource& src_;
  bpred::BranchPredictorUnit bp_;
  cache::MemorySystem mem_;
  Rob rob_;
  Lsq lsq_;
  RenameTable rename_;
  FuPool fu_;
  FixedQueue<FetchedInst> ifq_;
  StatsRegistry stats_;

  // Resolve-once stat handles (must follow stats_: they bind into it).
  FetchStats fstat_;
  DispatchStats dstat_;
  IssueStats istat_;
  LsqRefreshStats lstat_;
  WritebackStats wstat_;
  CommitStats cstat_;
  OccupancyStats ostat_;

  // Issue-stage candidate scratch, hoisted out of the cycle loop so the
  // hot path never allocates.
  enum class IssueCandKind : std::uint8_t { kFuOp, kAgen, kLoadMem };
  struct IssueCand {
    int rob_slot;
    IssueCandKind kind;
  };
  std::vector<IssueCand> issue_cands_;

  Cycle cycle_ = 0;
  InstSeq next_seq_ = 0;
  std::uint64_t committed_ = 0;
  std::uint64_t fetched_ = 0;
  std::uint64_t wrong_path_fetched_ = 0;
  std::uint64_t squashed_ = 0;
  Cycle last_commit_cycle_ = 0;

  // Fetch's view cursor (valid only inside stage_fetch; see above).
  trace::BatchView view_{};
  std::size_t view_pos_ = 0;                  ///< next unread record in view_
  std::size_t view_mat_ = ~std::size_t{0};    ///< view_pos_ that view_rec_ holds
  trace::TraceRecord view_rec_{};             ///< fetch_peek materialization target

  // Fetch state.
  Addr fetch_pc_ = 0;
  Cycle fetch_stall_until_ = 0;
  bool wrong_path_active_ = false;   ///< consuming a tagged block
  Addr wrong_path_pc_ = 0;           ///< next wrong-path PC to assign
  bool awaiting_resolution_ = false; ///< mispredict outstanding, nothing to fetch
  bool mispredict_inflight_ = false; ///< an unresolved mispredicted branch exists
  Addr resume_pc_ = 0;               ///< correct-path PC after the branch resolves

  // Per-cycle port usage.
  unsigned read_ports_used_ = 0;
  unsigned write_ports_used_ = 0;

  // Interval-stats plane (core/sampling.cpp). interval_next_ is the
  // committed-inst threshold for the next boundary; ~0 (the sentinel
  // when no recorder is attached) keeps the cycle loop's check to one
  // never-taken compare.
  void record_interval_boundary();
  IntervalRecorder* intervals_ = nullptr;
  std::uint64_t interval_next_ = ~std::uint64_t{0};
};

}  // namespace resim::core

#endif  // RESIM_CORE_ENGINE_H
