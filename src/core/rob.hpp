// Reorder Buffer: circular in-order window of in-flight instructions.
// Dispatch allocates at the tail, Commit releases from the head
// (paper §III: "Dispatch allocates Load/Store Queue (LSQ) and Reorder
// Buffer (RB) entries").
#ifndef RESIM_CORE_ROB_H
#define RESIM_CORE_ROB_H

#include <cstdint>
#include <vector>

#include "bpred/unit.hpp"
#include "common/types.hpp"
#include "trace/record.hpp"

namespace resim::core {

/// An instruction as it left Fetch: the pre-decoded record plus the
/// fetch-time prediction state.
struct FetchedInst {
  trace::TraceRecord rec{};
  Addr pc = 0;
  InstSeq seq = 0;
  Cycle fetched_at = 0;
  bpred::Prediction pred{};
  bpred::Outcome outcome = bpred::Outcome::kCorrect;

  [[nodiscard]] bool wrong_path() const { return rec.wrong_path; }
};

struct RobEntry {
  FetchedInst fi{};
  Cycle dispatched_at = 0;

  // Dataflow: up to two register sources, tracked as producing ROB slots.
  int src_rob[2] = {-1, -1};
  unsigned src_pending = 0;

  // Execution state.
  bool issued = false;      ///< FU op (or load memory access) scheduled
  bool agen_issued = false; ///< memory ops: address generation scheduled
  Cycle complete_at = 0;    ///< valid when issued
  bool completed = false;   ///< result written back / store done

  int lsq_slot = -1;        ///< -1 for non-memory instructions

  [[nodiscard]] bool is_mem() const { return fi.rec.is_mem(); }
  [[nodiscard]] bool is_load() const { return fi.rec.is_load(); }
  [[nodiscard]] bool is_store() const { return fi.rec.is_mem() && fi.rec.is_store; }
  [[nodiscard]] bool is_branch() const { return fi.rec.is_branch(); }
};

class Rob {
 public:
  explicit Rob(unsigned capacity);

  [[nodiscard]] unsigned capacity() const { return static_cast<unsigned>(entries_.size()); }
  [[nodiscard]] unsigned size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] bool full() const { return count_ == entries_.size(); }

  /// Allocate the next entry in program order; returns its physical slot.
  /// Precondition: !full().
  int allocate();

  /// Physical slot of the i-th oldest entry (0 == head).
  [[nodiscard]] int slot_at(unsigned age_index) const;

  [[nodiscard]] RobEntry& entry(int slot) { return entries_.at(static_cast<std::size_t>(slot)); }
  [[nodiscard]] const RobEntry& entry(int slot) const {
    return entries_.at(static_cast<std::size_t>(slot));
  }

  [[nodiscard]] RobEntry& head() { return entry(slot_at(0)); }
  [[nodiscard]] int head_slot() const { return slot_at(0); }

  /// Release the head entry (commit). Precondition: !empty().
  void pop_head();

  /// Squash: drop every entry (mis-speculation recovery).
  void clear();

 private:
  std::vector<RobEntry> entries_;
  unsigned head_ = 0;
  unsigned count_ = 0;
};

}  // namespace resim::core

#endif  // RESIM_CORE_ROB_H
