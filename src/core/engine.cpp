#include "core/engine.hpp"

#include <stdexcept>

#include "isa/program.hpp"

namespace resim::core {

ReSimEngine::ReSimEngine(const CoreConfig& cfg, trace::TraceSource& source)
    : cfg_(cfg),
      sched_(PipelineSchedule::make(cfg.variant, cfg.width)),
      src_(source),
      bp_(cfg.bp),
      mem_(cfg.mem),
      rob_(cfg.rob_size),
      lsq_(cfg.lsq_size),
      fu_(cfg.fu.alu_count, cfg.fu.alu_latency, cfg.fu.alu_pipelined, cfg.fu.mul_count,
          cfg.fu.mul_latency, cfg.fu.mul_pipelined, cfg.fu.div_count, cfg.fu.div_latency,
          cfg.fu.div_pipelined),
      ifq_(cfg.ifq_size),
      fstat_(stats_),
      dstat_(stats_),
      istat_(stats_),
      lstat_(stats_),
      wstat_(stats_),
      cstat_(stats_),
      ostat_(stats_) {
  cfg_.validate();
  issue_cands_.reserve(cfg_.rob_size);
  // The first record carries no PC context: PCs are implicit from the
  // program base until the first branch record resyncs us (DESIGN.md §5).
  fetch_pc_ = isa::Program::kDefaultBase;
}

OccupancyStats::OccupancyStats(StatsRegistry& reg)
    : ifq(reg.occupancy("occ.ifq")),
      rob(reg.occupancy("occ.rob")),
      lsq(reg.occupancy("occ.lsq")) {}

bool ReSimEngine::pipeline_empty() const {
  return rob_.empty() && ifq_.empty();
}

bool ReSimEngine::finished() {
  return src_.peek() == nullptr && pipeline_empty() && !mispredict_inflight_;
}

bool ReSimEngine::step_major_cycle() {
  if (finished()) return false;

  read_ports_used_ = 0;
  write_ports_used_ = 0;

  // Reverse pipeline order: every stage sees begin-of-cycle state.
  stage_commit();
  stage_writeback();
  stage_lsq_refresh();
  stage_issue();
  stage_dispatch();
  stage_fetch();

  sample_occupancy_and_advance();

  // Watchdog: a cycle budget without forward progress indicates a model
  // bug; fail loudly rather than spin.
  if (cycle_ - last_commit_cycle_ > 200'000 && !pipeline_empty()) {
    throw std::runtime_error("ReSimEngine: no commit in 200k cycles (deadlock?)");
  }
  return true;
}

void ReSimEngine::sample_occupancy_and_advance() {
  ostat_.ifq.sample(ifq_.size());
  ostat_.rob.sample(rob_.size());
  ostat_.lsq.sample(lsq_.size());
  ++cycle_;
  // One never-taken compare when no recorder is attached (sentinel ~0).
  if (committed_ >= interval_next_) record_interval_boundary();
}

void ReSimEngine::wake_dependents(int producer_slot) {
  for (unsigned i = 0; i < rob_.size(); ++i) {
    RobEntry& e = rob_.entry(rob_.slot_at(i));
    for (int k = 0; k < 2; ++k) {
      if (e.src_rob[k] == producer_slot && e.src_pending > 0) {
        e.src_rob[k] = -1;
        --e.src_pending;
      }
    }
  }
}

void ReSimEngine::squash_and_redirect(Addr resume_pc) {
  // Everything younger than the resolving branch is wrong-path by
  // construction (fetch only followed the tagged block).
  squashed_ += rob_.size() + ifq_.size();
  cstat_.squashed_insts.add(rob_.size() + ifq_.size());
  cstat_.squashes.add();
  rob_.clear();
  lsq_.clear();
  ifq_.clear();
  rename_.clear();

  // Discard tagged records not fetched by the resolution point (§V.A).
  while (src_.peek() != nullptr && src_.peek()->wrong_path) {
    (void)src_.next();
    cstat_.discarded_tagged.add();
  }

  wrong_path_active_ = false;
  awaiting_resolution_ = false;
  mispredict_inflight_ = false;
  fetch_pc_ = resume_pc;
  fetch_stall_until_ = cycle_ + 1 + cfg_.misspec_penalty;
}

SimResult ReSimEngine::result() const {
  SimResult r;
  r.committed = committed_;
  r.fetched = fetched_;
  r.wrong_path_fetched = wrong_path_fetched_;
  r.squashed = squashed_;
  r.major_cycles = cycle_;
  r.minor_cycles = static_cast<std::uint64_t>(cycle_) * sched_.latency();
  r.trace_records = src_.records_consumed();
  r.trace_bits = src_.bits_consumed();
  r.stats = stats_;
  // Fold predictor and cache statistics into the report.
  r.stats.merge(bp_.stats());
  mem_.export_stats(r.stats);
  return r;
}

SimResult ReSimEngine::run() {
  while (step_major_cycle()) {
  }
  return result();
}

}  // namespace resim::core
