#include "core/interval.hpp"

#include <utility>

namespace resim::core {

void IntervalRecorder::boundary(const StatsSnapshot& cumulative, std::uint64_t committed,
                                std::uint64_t cycles) {
  if (committed == last_committed_) return;  // empty interval: nothing to close

  const StatsSnapshot d = StatsRegistry::delta(cumulative, last_);

  IntervalRow row;
  row.index = rows_.size();
  row.end_inst = committed;
  row.end_cycle = cycles;
  row.committed = committed - last_committed_;
  row.cycles = cycles - last_cycles_;
  row.branches = d.value("commit.branches");
  row.mispredicts = d.value("fetch.mispredicts");
  row.il1_misses = d.value("il1.misses");
  row.dl1_misses = d.value("dl1.misses");
  rows_.push_back(row);

  last_ = cumulative;
  last_committed_ = committed;
  last_cycles_ = cycles;
}

}  // namespace resim::core
