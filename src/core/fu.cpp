#include "core/fu.hpp"

#include "common/numeric.hpp"

namespace resim::core {

FuPool::FuPool(unsigned alu_count, unsigned alu_latency, bool alu_pipelined,
               unsigned mul_count, unsigned mul_latency, bool mul_pipelined,
               unsigned div_count, unsigned div_latency, bool div_pipelined) {
  require(alu_count >= 1 && mul_count >= 1 && div_count >= 1, "FuPool: >=1 unit per class");
  classes_[0] = UnitClass{std::vector<Cycle>(alu_count, 0), alu_latency, alu_pipelined};
  classes_[1] = UnitClass{std::vector<Cycle>(mul_count, 0), mul_latency, mul_pipelined};
  classes_[2] = UnitClass{std::vector<Cycle>(div_count, 0), div_latency, div_pipelined};
}

std::optional<std::uint32_t> FuPool::bind(UnitClass& c, Cycle now) {
  for (Cycle& busy_until : c.units) {
    if (busy_until <= now) {
      // A pipelined unit is only unavailable for the issue cycle itself;
      // an unpipelined one blocks for its whole latency.
      busy_until = now + (c.pipelined ? 1 : c.latency);
      return c.latency;
    }
  }
  return std::nullopt;
}

std::optional<std::uint32_t> FuPool::try_issue(trace::OtherFu fu, Cycle now) {
  switch (fu) {
    case trace::OtherFu::kAlu: return bind(classes_[0], now);
    case trace::OtherFu::kMul: return bind(classes_[1], now);
    case trace::OtherFu::kDiv: return bind(classes_[2], now);
    case trace::OtherFu::kNone: return 1;  // nop/halt: no unit, completes next cycle
  }
  return std::nullopt;
}

void FuPool::reset() {
  for (UnitClass& c : classes_) {
    for (Cycle& b : c.units) b = 0;
  }
}

}  // namespace resim::core
