// Functional-unit pool with per-unit occupancy.
//
// Pipelined units accept one operation per cycle regardless of latency;
// unpipelined units (the divider) stay busy for their full latency
// (paper §V.C: ALU latency 1, multiplier 3, divider 10).
#ifndef RESIM_CORE_FU_H
#define RESIM_CORE_FU_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "isa/opcode.hpp"
#include "trace/record.hpp"

namespace resim::core {

struct FuPoolConfig;  // defined in core/config.hpp

class FuPool {
 public:
  FuPool(unsigned alu_count, unsigned alu_latency, bool alu_pipelined,
         unsigned mul_count, unsigned mul_latency, bool mul_pipelined,
         unsigned div_count, unsigned div_latency, bool div_pipelined);

  /// Try to bind a unit of the class needed by `fu` at cycle `now`.
  /// Returns the operation latency on success. OtherFu::kNone needs no
  /// unit and always succeeds with latency 1.
  std::optional<std::uint32_t> try_issue(trace::OtherFu fu, Cycle now);

  /// ALU binding for address generation and branch evaluation.
  std::optional<std::uint32_t> try_issue_alu(Cycle now) {
    return try_issue(trace::OtherFu::kAlu, now);
  }

  void reset();

  [[nodiscard]] unsigned alu_count() const { return static_cast<unsigned>(classes_[0].units.size()); }

 private:
  struct UnitClass {
    std::vector<Cycle> units;  ///< per-unit busy-until cycle
    std::uint32_t latency = 1;
    bool pipelined = true;
  };

  std::optional<std::uint32_t> bind(UnitClass& c, Cycle now);

  // [0]=ALU, [1]=MUL, [2]=DIV
  UnitClass classes_[3];
};

}  // namespace resim::core

#endif  // RESIM_CORE_FU_H
