#include "core/rob.hpp"

#include <stdexcept>

#include "common/numeric.hpp"

namespace resim::core {

Rob::Rob(unsigned capacity) : entries_(capacity) {
  require(capacity >= 1, "Rob: capacity >= 1");
}

int Rob::allocate() {
  if (full()) throw std::logic_error("Rob::allocate on full ROB");
  const unsigned slot = (head_ + count_) % entries_.size();
  ++count_;
  entries_[slot] = RobEntry{};
  return static_cast<int>(slot);
}

int Rob::slot_at(unsigned age_index) const {
  if (age_index >= count_) throw std::out_of_range("Rob::slot_at");
  return static_cast<int>((head_ + age_index) % entries_.size());
}

void Rob::pop_head() {
  if (empty()) throw std::logic_error("Rob::pop_head on empty ROB");
  head_ = (head_ + 1) % static_cast<unsigned>(entries_.size());
  --count_;
}

void Rob::clear() {
  head_ = 0;
  count_ = 0;
}

}  // namespace resim::core
