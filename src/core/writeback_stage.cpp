// Writeback stage (paper §III): "Writeback selects the oldest completed
// instruction(s) and broadcasts their results and wakes up all their
// dependent instructions."
//
// An instruction issued at cycle C with latency L completes at C+L; the
// writeback of cycle C+L broadcasts it, so a dependent can issue in the
// same major cycle (Issue runs after Writeback in the engine's stage
// order). Because Commit runs *before* Writeback, a completion only
// becomes commit-eligible one cycle later — the architectural effect of
// the paper's §IV.B commit-blocking flag.
#include "core/engine.hpp"

namespace resim::core {

WritebackStats::WritebackStats(StatsRegistry& reg)
    : broadcasts(reg.counter("wb.broadcasts")) {}


void ReSimEngine::stage_writeback() {
  unsigned broadcast = 0;
  for (unsigned i = 0; i < rob_.size() && broadcast < cfg_.width; ++i) {
    const int slot = rob_.slot_at(i);
    RobEntry& e = rob_.entry(slot);
    if (!e.issued || e.completed || e.complete_at > cycle_) continue;

    e.completed = true;
    ++broadcast;
    wstat_.broadcasts.add();
    wake_dependents(slot);
  }
}

}  // namespace resim::core
