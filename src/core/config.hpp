// Simulated-processor configuration (paper §III, §V.C).
//
// ReSim is "designed to be parameterizable"; every structure size below
// is a free parameter. The named factory functions return the exact
// configurations evaluated in the paper.
#ifndef RESIM_CORE_CONFIG_H
#define RESIM_CORE_CONFIG_H

#include <cstdint>

#include "bpred/config.hpp"
#include "cache/memsys.hpp"
#include "core/schedule.hpp"

namespace resim::core {

/// Functional-unit pool (paper §V.C: "four ALUs, one Multiplier and one
/// Divider with one, three and ten cycle latency respectively").
struct FuPoolConfig {
  unsigned alu_count = 4;
  unsigned alu_latency = 1;
  bool alu_pipelined = true;
  unsigned mul_count = 1;
  unsigned mul_latency = 3;
  bool mul_pipelined = true;
  unsigned div_count = 1;
  unsigned div_latency = 10;
  bool div_pipelined = false;

  void validate() const {
    require(alu_count >= 1 && mul_count >= 1 && div_count >= 1,
            "FuPoolConfig: at least one unit per class");
    require(alu_latency >= 1 && mul_latency >= 1 && div_latency >= 1,
            "FuPoolConfig: latencies >= 1");
  }
};

/// How a simulation worker feeds itself trace records (a host-side
/// knob, not a property of the simulated machine): decode the whole
/// trace up front (memory), stream a .rsim file chunk-at-a-time in
/// O(chunk) RSS (stream), or map it read-only and decode in place
/// (mmap). Reflected as the `trace.backend` registry parameter so
/// sweeps can be driven onto any backend declaratively; every backend
/// produces bit-identical simulation results.
enum class TraceBackend : std::uint8_t { kMemory, kStream, kMmap };

/// Interval stats + sampled (SimPoint-style) execution knobs
/// (docs/SAMPLING.md). All default to "off": with the defaults every
/// run is the usual full detailed simulation, byte-identical to a build
/// without this struct. Host-side accuracy/latency trade: sampling
/// changes which regions are simulated in detail, so reported stats are
/// estimates of the full run, never a different machine.
struct SampleConfig {
  /// Record a time-series stats row every N committed instructions
  /// (0 = off). Orthogonal to sampling; works in full runs too.
  std::uint64_t interval_insts = 0;

  /// Number K of detailed sample windows (0 = sampling off: full run).
  std::uint64_t windows = 0;

  /// Records per detailed window (W).
  std::uint64_t window_insts = 100'000;

  /// Functional-warmup records replayed into the branch predictor and
  /// caches immediately before each detailed window.
  std::uint64_t warmup_insts = 10'000;

  void validate() const {
    require(window_insts >= 1, "SampleConfig: window_insts >= 1");
  }
};

struct CoreConfig {
  unsigned width = 4;       ///< N: fetch/dispatch/issue/writeback/commit width
  unsigned ifq_size = 8;    ///< instruction fetch queue entries
  unsigned rob_size = 16;   ///< paper: "16 Reorder Buffer entries"
  unsigned lsq_size = 8;    ///< paper: "8 LSQ entries"
  FuPoolConfig fu{};

  unsigned mem_read_ports = 2;   ///< cache read ports available to Issue
  unsigned mem_write_ports = 1;  ///< memory write ports available to Commit

  unsigned misfetch_penalty = 3;  ///< paper: "set to three"
  unsigned misspec_penalty = 3;

  bpred::BPredConfig bp{};
  cache::MemSysConfig mem = cache::MemSysConfig::perfect_memory();

  PipelineVariant variant = PipelineVariant::kOptimized;

  /// Host trace-source backend (never affects simulation results; see
  /// TraceBackend above and docs/CONFIG.md).
  TraceBackend trace_backend = TraceBackend::kMemory;

  /// Share one decoded-batch producer across batch-runner jobs that
  /// read the same trace (trace/batch_cache.hpp), so an N-point sweep
  /// decodes each chunk once instead of N times. Host-side only: results
  /// are byte-identical with it on or off.
  bool trace_shared_decode = true;

  /// Write the v4 delta pre-filter in front of the LZ stage when the
  /// batch runner round-trips records through a temp .rsim
  /// (docs/TRACE_FORMAT.md). Host-side only: the filter is exactly
  /// invertible, so results never change — only the temp file shrinks.
  bool trace_prefilter = false;

  /// `resim_cli serve` backpressure bound: requests queued but not yet
  /// executing before the daemon answers `busy` (docs/SERVE.md).
  /// Host-side only: simulation results never depend on it.
  unsigned serve_max_pending = 64;

  /// `resim_cli serve` idle shutdown: seconds without a connection,
  /// pending request, or running job before the daemon exits on its
  /// own. 0 keeps it alive until a shutdown request or signal.
  /// Host-side only.
  unsigned serve_idle_timeout_s = 0;

  /// Interval stats + sampled execution (defaults: both off — full
  /// detailed runs, outputs unchanged). See SampleConfig above.
  SampleConfig sample{};

  /// Conservative wrong-path window (ROB + IFQ, paper §V.A).
  [[nodiscard]] unsigned wrong_path_block() const { return rob_size + ifq_size; }

  void validate() const;

  /// Table 1 left: 4-issue, two-level BP, perfect memory, Optimized
  /// pipeline (major-cycle latency N+3 = 7).
  [[nodiscard]] static CoreConfig paper_4wide_perfect();

  /// Table 1 right: 2-issue, perfect BP, 32 KB 8-way 64 B L1 I+D caches,
  /// Efficient pipeline (major-cycle latency N+4 = 6).
  [[nodiscard]] static CoreConfig paper_2wide_cache();
};

}  // namespace resim::core

#endif  // RESIM_CORE_CONFIG_H
