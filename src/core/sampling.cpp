// Sampling / interval-stats plane of ReSimEngine (docs/SAMPLING.md).
//
// Everything here is off the cycle loop's hot path: interval boundaries
// fire every sample.interval_insts committed instructions, and
// functional warmup runs between detailed windows of a sampled run.
//
// Functional warmup mirrors the architectural (correct-path) effects of
// Fetch + Commit without any timing: the implicit-PC walk and branch
// resync follow fetch_cycle(), predictor train-at-commit follows
// stage_commit(), I-cache touches happen at the fetch PC and D-cache
// touches at the effective address. Wrong-path (tagged) records are
// discarded untouched — in detailed mode they only perturb timing and
// are squashed before commit, so they must leave no architectural marks
// here either.
#include <stdexcept>

#include "core/engine.hpp"
#include "core/interval.hpp"

namespace resim::core {

StatsSnapshot ReSimEngine::stats_snapshot() const {
  StatsRegistry merged = stats_;
  merged.merge(bp_.stats());
  mem_.export_stats(merged);
  return merged.snapshot();
}

void ReSimEngine::attach_interval_recorder(IntervalRecorder* rec) {
  intervals_ = rec;
  if (rec == nullptr || rec->interval_insts() == 0) {
    intervals_ = nullptr;
    interval_next_ = ~std::uint64_t{0};
    return;
  }
  // First boundary after the NEXT full interval from wherever we are —
  // attaching mid-run starts a fresh interval, it does not backfill.
  interval_next_ = committed_ + rec->interval_insts();
}

void ReSimEngine::record_interval_boundary() {
  // Width commits can overshoot a boundary; advance the threshold past
  // the current count so each row spans at least one full interval.
  const std::uint64_t n = intervals_->interval_insts();
  intervals_->boundary(stats_snapshot(), committed_, cycle_);
  while (interval_next_ <= committed_) interval_next_ += n;
}

void ReSimEngine::flush_intervals() {
  if (intervals_ == nullptr) return;
  intervals_->boundary(stats_snapshot(), committed_, cycle_);
}

std::uint64_t ReSimEngine::functional_warmup(std::uint64_t max_records) {
  if (!pipeline_empty() || mispredict_inflight_) {
    throw std::logic_error("functional_warmup: pipeline not drained");
  }

  Addr pc = fetch_pc_;
  std::uint64_t done = 0;
  while (done < max_records && fetch_peek() != nullptr) {
    const trace::TraceRecord rec = fetch_next();
    ++done;
    if (rec.wrong_path) continue;  // tagged: no architectural effect

    // Implicit-PC walk with branch resync, as in fetch_cycle().
    if (rec.is_branch() && rec.pc != pc) pc = rec.pc;
    (void)mem_.ifetch(pc);

    if (rec.is_branch()) {
      const Addr fallthrough = pc + kInstBytes;
      const Addr actual_next = rec.taken ? rec.target : fallthrough;
      // predict() keeps the RAS in step (speculative push/pop), and the
      // snapshot it returns trains the same entry commit would.
      const bpred::Prediction pred = bp_.predict(pc, rec.ctrl, fallthrough, rec.taken, actual_next);
      bp_.update_commit(pc, rec.ctrl, rec.taken, actual_next, pred);
      pc = actual_next;
    } else {
      if (rec.is_mem()) {
        if (rec.is_store) {
          (void)mem_.dwrite(rec.addr);
        } else {
          (void)mem_.dread(rec.addr);
        }
      }
      pc += kInstBytes;
    }
  }
  flush_view();

  fetch_pc_ = pc;
  if (done != 0) stats_.counter("sample.warmup_records").add(done);
  return done;
}

}  // namespace resim::core
