#include "core/cmp.hpp"

#include <stdexcept>

namespace resim::core {

CmpSimulation::CmpSimulation(const CoreConfig& cfg, std::vector<trace::TraceSource*> sources) {
  if (sources.empty()) throw std::invalid_argument("CmpSimulation: need >= 1 core");
  engines_.reserve(sources.size());
  for (trace::TraceSource* src : sources) {
    if (src == nullptr) throw std::invalid_argument("CmpSimulation: null trace source");
    engines_.push_back(std::make_unique<ReSimEngine>(cfg, *src));
  }
}

bool CmpSimulation::step_lockstep() {
  bool any = false;
  for (auto& e : engines_) {
    any |= e->step_major_cycle();
  }
  if (any) ++cycle_;
  return any;
}

CmpResult CmpSimulation::run() {
  while (step_lockstep()) {
  }
  CmpResult r;
  r.lockstep_cycles = cycle_;
  r.cores.reserve(engines_.size());
  for (auto& e : engines_) r.cores.push_back(e->result());
  return r;
}

ThroughputReport CmpSimulation::aggregate_throughput(const CmpResult& r,
                                                     double minor_clock_mhz,
                                                     unsigned major_latency) {
  // All cores advance on the shared minor clock; wall time is set by the
  // lockstep cycle count, work is the sum over cores.
  SimResult agg;
  agg.major_cycles = r.lockstep_cycles;
  agg.committed = r.total_committed();
  for (const auto& c : r.cores) {
    agg.trace_records += c.trace_records;
    agg.trace_bits += c.trace_bits;
  }
  agg.minor_cycles = agg.major_cycles * major_latency;
  return fpga_throughput(agg, minor_clock_mhz, major_latency);
}

}  // namespace resim::core
