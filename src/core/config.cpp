#include "core/config.hpp"

namespace resim::core {

void CoreConfig::validate() const {
  require(width >= 1 && width <= 16, "CoreConfig: width in [1,16]");
  require(ifq_size >= width, "CoreConfig: IFQ must hold a fetch group");
  require(rob_size >= 2, "CoreConfig: rob_size >= 2");
  require(lsq_size >= 1, "CoreConfig: lsq_size >= 1");
  require(mem_read_ports >= 1, "CoreConfig: mem_read_ports >= 1");
  require(mem_write_ports >= 1, "CoreConfig: mem_write_ports >= 1");
  fu.validate();
  bp.validate();
  mem.validate();
  sample.validate();
  if (variant == PipelineVariant::kOptimized) {
    // Paper §IV.B: the N+3 pipeline is valid "with the restriction that
    // the simulated processor has up to N-1 memory ports".
    require(mem_read_ports <= width - 1 && mem_write_ports <= width - 1,
            "CoreConfig: Optimized pipeline requires <= N-1 memory ports");
  }
}

CoreConfig CoreConfig::paper_4wide_perfect() {
  CoreConfig c;
  c.width = 4;
  c.bp = bpred::BPredConfig::paper_default();
  c.mem = cache::MemSysConfig::perfect_memory();
  c.variant = PipelineVariant::kOptimized;
  return c;
}

CoreConfig CoreConfig::paper_2wide_cache() {
  CoreConfig c;
  c.width = 2;
  c.bp = bpred::BPredConfig::perfect();
  c.mem = cache::MemSysConfig::paper_l1();
  c.variant = PipelineVariant::kEfficient;
  c.mem_read_ports = 1;
  c.mem_write_ports = 1;
  return c;
}

}  // namespace resim::core
