// Chip-multiprocessor co-simulation (paper §VI, future work):
//
//   "Therefore it is possible to fit multiple ReSim instances in a
//    single FPGA and simulate multi-core systems. We are evaluating the
//    modifications and extensions that need to be made to ReSim in order
//    to support multi-core simulation."
//
// CmpSimulation steps P independent ReSim engines in lockstep, one major
// cycle at a time — the FPGA reality, where all instances share the
// minor-cycle clock. It reports per-core and aggregate results plus the
// combined input-trace bandwidth (the feasibility concern of §V.C).
// Cores are independent (private traces and memory models); a coherent
// shared-memory interconnect is beyond the paper's scope and documented
// as such.
#ifndef RESIM_CORE_CMP_H
#define RESIM_CORE_CMP_H

#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "core/perf.hpp"

namespace resim::core {

struct CmpResult {
  std::vector<SimResult> cores;
  Cycle lockstep_cycles = 0;  ///< major cycles until the LAST core finished

  [[nodiscard]] std::uint64_t total_committed() const {
    std::uint64_t sum = 0;
    for (const auto& c : cores) sum += c.committed;
    return sum;
  }
  /// Aggregate IPC over the lockstep window.
  [[nodiscard]] double aggregate_ipc() const {
    return lockstep_cycles == 0
               ? 0.0
               : static_cast<double>(total_committed()) / static_cast<double>(lockstep_cycles);
  }
};

class CmpSimulation {
 public:
  /// One configuration for all cores; one trace source per core.
  CmpSimulation(const CoreConfig& cfg, std::vector<trace::TraceSource*> sources);

  /// Advance every unfinished core by one major cycle; returns false
  /// when all cores have drained.
  bool step_lockstep();

  [[nodiscard]] CmpResult run();

  [[nodiscard]] unsigned cores() const { return static_cast<unsigned>(engines_.size()); }
  [[nodiscard]] const ReSimEngine& core(unsigned i) const { return *engines_.at(i); }
  [[nodiscard]] Cycle cycle() const { return cycle_; }

  /// Aggregate FPGA-side throughput: all cores share the minor clock.
  [[nodiscard]] static ThroughputReport aggregate_throughput(const CmpResult& r,
                                                             double minor_clock_mhz,
                                                             unsigned major_latency);

 private:
  std::vector<std::unique_ptr<ReSimEngine>> engines_;
  Cycle cycle_ = 0;
};

}  // namespace resim::core

#endif  // RESIM_CORE_CMP_H
