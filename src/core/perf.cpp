#include "core/perf.hpp"

#include "common/numeric.hpp"

namespace resim::core {

ThroughputReport fpga_throughput(const SimResult& r, double minor_clock_mhz,
                                 unsigned major_latency) {
  require(minor_clock_mhz > 0, "fpga_throughput: clock must be positive");
  require(major_latency >= 1, "fpga_throughput: latency >= 1");

  ThroughputReport t;
  t.minor_clock_mhz = minor_clock_mhz;
  t.major_latency = major_latency;
  t.major_rate_mhz = minor_clock_mhz / static_cast<double>(major_latency);
  if (r.major_cycles == 0) return t;

  const double minor_cycles =
      static_cast<double>(r.major_cycles) * static_cast<double>(major_latency);
  t.sim_seconds = minor_cycles / (minor_clock_mhz * 1e6);
  t.mips = static_cast<double>(r.committed) / t.sim_seconds / 1e6;
  t.mips_processed = static_cast<double>(r.trace_records) / t.sim_seconds / 1e6;
  t.trace_mbytes_per_sec = static_cast<double>(r.trace_bits) / 8.0 / t.sim_seconds / 1e6;
  t.bits_per_inst = r.bits_per_record();
  return t;
}

}  // namespace resim::core
