// Lsq_refresh (paper §III): executed once per major cycle.
//
//   "Loads can be issued only after their effective address has been
//    calculated, and there are no unresolved memory dependencies. These
//    checks are performed by Lsq_refresh."
//
// The scan walks the LSQ in program order, tracking older stores:
//  * a load with a completed address is blocked while any older store's
//    address is unknown (conservative memory disambiguation);
//  * an older completed store to the same word forwards its value
//    (§III: "a read port is allocated if their value has not been
//    forwarded in the LSQ");
//  * stores become commit-ready (store_done) once their address
//    generation — which waits for both base and data registers — has
//    completed.
#include "core/engine.hpp"

namespace resim::core {

LsqRefreshStats::LsqRefreshStats(StatsRegistry& reg)
    : stores_completed(reg.counter("lsq.stores_completed")),
      loads_blocked(reg.counter("lsq.loads_blocked")),
      loads_forwarded(reg.counter("lsq.loads_forwarded")),
      loads_ready(reg.counter("lsq.loads_ready")) {}


void ReSimEngine::stage_lsq_refresh() {
  for (unsigned i = 0; i < lsq_.size(); ++i) {
    const int slot = lsq_.slot_at(i);
    LsqEntry& m = lsq_.entry(slot);

    if (m.is_store) {
      // A store is commit-ready once its address is generated *and* its
      // data register has resolved (STA/STD split).
      RobEntry& e = rob_.entry(m.rob_slot);
      if (!m.store_done && m.addr_ready(cycle_) && e.src_rob[1] < 0) {
        m.store_done = true;
        // Stores produce no register value: completion bypasses the
        // writeback broadcast and the entry waits for Commit.
        e.completed = true;
        lstat_.stores_completed.add();
      }
      continue;
    }

    // Loads.
    if (m.mem_issued || m.mem_ready || !m.addr_ready(cycle_)) continue;

    bool blocked = false;
    bool forwarded = false;
    // Scan older memory operations (program order) for conflicts; the
    // youngest older store to the same word wins the forwarding match.
    for (unsigned j = 0; j < i; ++j) {
      const LsqEntry& older = lsq_.entry(lsq_.slot_at(j));
      if (!older.is_store) continue;
      if (!older.addr_ready(cycle_)) {
        blocked = true;  // unresolved memory dependence
        forwarded = false;
        continue;
      }
      if (older.addr == m.addr) {
        if (older.store_done) {
          forwarded = true;
          blocked = false;
        } else {
          blocked = true;  // matching store's data not ready yet
        }
      }
    }

    if (blocked) {
      lstat_.loads_blocked.add();
      continue;
    }
    m.mem_ready = true;
    m.forwarded = forwarded;
    if (forwarded) lstat_.loads_forwarded.add();
    lstat_.loads_ready.add();
  }
}

}  // namespace resim::core
