// ReSim's internal minor-cycle pipeline (paper §IV, Figures 2-4).
//
// A *major cycle* is one simulated processor cycle; ReSim executes it as
// a sequence of *minor cycles*, processing one instruction slot per
// stage per minor cycle (the serial execution model). The three
// published organizations:
//
//   Simple    (Fig. 2): WB(xN) -> Lsq_refresh -> Issue(xN, cache access
//              pipelined one behind) -> bookkeeping.  Latency 2N+3.
//   Efficient (Fig. 3): Issue before Writeback inside the major cycle
//              (writeback broadcast pipelined one simulated cycle early;
//              a flag keeps Commit from seeing same-cycle completions);
//              cache access before WB.                Latency N+4.
//   Optimized (Fig. 4): Lsq_refresh executes in parallel with the first
//              Issue slot, which therefore may not issue a load; valid
//              for <= N-1 memory ports.               Latency N+3.
//
// The exact lane layout of the figures is reconstructed from the prose
// constraints (see DESIGN.md §6); `validate()` checks every documented
// constraint and the latency formulas are exact.
#ifndef RESIM_CORE_SCHEDULE_H
#define RESIM_CORE_SCHEDULE_H

#include <cstdint>
#include <string>
#include <vector>

namespace resim::core {

enum class PipelineVariant : std::uint8_t { kSimple, kEfficient, kOptimized };

[[nodiscard]] const char* variant_name(PipelineVariant v);

/// Stage units of the ReSim datapath (Figure 1 / Table 4 columns).
enum class StageUnit : std::uint8_t {
  kFetch,        // F_k: one trace instruction per minor cycle
  kICacheAccess, // CA on the fetch lane
  kDecouple,     // DPL: fetch->dispatch decouple buffer transfer
  kDispatch,     // D_k
  kIssue,        // IS_k
  kDCacheAccess, // CA_k: load cache access for issue slot k
  kWriteback,    // WB_k
  kLsqRefresh,   // once per major cycle
  kCommit,       // C_k
  kStoreCacheAccess,  // store D-cache access at commit
  kBookkeep,     // end-of-major-cycle bookkeeping
};

[[nodiscard]] const char* stage_unit_name(StageUnit u);

struct MicroOp {
  StageUnit unit;
  int slot;  ///< instruction slot within the stage (-1 for once-per-cycle units)
};

class PipelineSchedule {
 public:
  [[nodiscard]] static PipelineSchedule make(PipelineVariant v, unsigned width);

  /// Major-cycle latency in minor cycles: 2N+3 / N+4 / N+3.
  [[nodiscard]] static unsigned latency_of(PipelineVariant v, unsigned width);

  [[nodiscard]] PipelineVariant variant() const { return variant_; }
  [[nodiscard]] unsigned width() const { return width_; }
  [[nodiscard]] unsigned latency() const { return static_cast<unsigned>(minors_.size()); }

  /// Micro-ops executing in minor cycle m (parallel units).
  [[nodiscard]] const std::vector<MicroOp>& minor(unsigned m) const { return minors_.at(m); }
  [[nodiscard]] const std::vector<std::vector<MicroOp>>& minors() const { return minors_; }

  /// May issue slot 0 hold a load? (false only for the Optimized variant.)
  [[nodiscard]] bool load_allowed_in_slot0() const {
    return variant_ != PipelineVariant::kOptimized;
  }

  /// Check every documented ordering constraint; throws std::logic_error
  /// with a description on violation.
  void validate() const;

  /// ASCII rendering in the style of Figures 2-4 (one lane per unit).
  [[nodiscard]] std::string render() const;

 private:
  PipelineSchedule(PipelineVariant v, unsigned width) : variant_(v), width_(width) {}

  /// Minor cycle in which (unit, slot) executes; -1 if absent.
  [[nodiscard]] int find(StageUnit u, int slot) const;

  PipelineVariant variant_;
  unsigned width_;
  std::vector<std::vector<MicroOp>> minors_;
};

}  // namespace resim::core

#endif  // RESIM_CORE_SCHEDULE_H
