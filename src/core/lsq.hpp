// Load/Store Queue.
//
// Paper §III: "Loads can be issued only after their effective address has
// been calculated, and there are no unresolved memory dependencies. These
// checks are performed by Lsq_refresh." The LSQ holds memory operations
// in program order; Lsq_refresh (core/lsq_refresh.cpp) resolves
// dependencies and store-to-load forwarding over this structure.
#ifndef RESIM_CORE_LSQ_H
#define RESIM_CORE_LSQ_H

#include <cstdint>
#include <limits>
#include <vector>

#include "common/types.hpp"

namespace resim::core {

inline constexpr Cycle kNever = std::numeric_limits<Cycle>::max();

struct LsqEntry {
  bool is_store = false;
  int rob_slot = -1;
  InstSeq seq = 0;
  Addr addr = 0;            ///< effective address (known from the trace record)
  Cycle addr_ready_at = kNever;  ///< when address generation completes
  bool mem_ready = false;   ///< load: cleared by Lsq_refresh to issue to memory
  bool forwarded = false;   ///< load: value satisfied by an older store
  bool mem_issued = false;  ///< load: memory access (or forward) scheduled
  bool store_done = false;  ///< store: address+data complete, awaiting commit

  [[nodiscard]] bool addr_ready(Cycle now) const { return addr_ready_at <= now; }
};

class Lsq {
 public:
  explicit Lsq(unsigned capacity);

  [[nodiscard]] unsigned capacity() const { return static_cast<unsigned>(entries_.size()); }
  [[nodiscard]] unsigned size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] bool full() const { return count_ == entries_.size(); }

  /// Allocate the next entry in program order; returns its physical slot.
  int allocate();

  [[nodiscard]] int slot_at(unsigned age_index) const;
  [[nodiscard]] LsqEntry& entry(int slot) { return entries_.at(static_cast<std::size_t>(slot)); }
  [[nodiscard]] const LsqEntry& entry(int slot) const {
    return entries_.at(static_cast<std::size_t>(slot));
  }

  /// Release the oldest entry; the caller asserts it belongs to the
  /// committing instruction.
  void pop_head();
  [[nodiscard]] int head_slot() const { return slot_at(0); }

  void clear();

 private:
  std::vector<LsqEntry> entries_;
  unsigned head_ = 0;
  unsigned count_ = 0;
};

}  // namespace resim::core

#endif  // RESIM_CORE_LSQ_H
