// The shipped resim_lint rules. Each one mechanizes an invariant that an
// earlier PR established by hand; docs/LINT.md carries the catalog with
// the full rationale and examples.
#include <memory>
#include <string>
#include <vector>

#include "analysis/lint.hpp"

namespace resim::analysis {

namespace {

bool starts_with(const std::string& s, const std::string& p) {
  return s.rfind(p, 0) == 0;
}
bool ends_with(const std::string& s, const std::string& p) {
  return s.size() >= p.size() && s.compare(s.size() - p.size(), p.size(), p) == 0;
}

/// Comment tokens carry suppressions, not code; every rule below works
/// on the comment-free stream.
std::vector<Token> code_tokens(const std::vector<Token>& toks) {
  std::vector<Token> out;
  out.reserve(toks.size());
  for (const Token& t : toks) {
    if (t.kind != TokKind::kComment) out.push_back(t);
  }
  return out;
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}
bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdentifier && t.text == text;
}

// ---------------------------------------------------------------------------
// hot-path-string-stats
//
// PR 5's 2x engine-throughput win depends on the cycle loop doing plain
// handle increments: string-keyed StatsRegistry::counter("...")/
// occupancy("...") lookups belong in a stats-struct constructor
// (resolve-once), never in per-cycle code. In the cycle-loop TUs this
// rule allows string-keyed calls only inside constructor definitions.
//
// Heuristic, documented in docs/LINT.md: the TU is segmented at every
// qualified function-definition header `A::B(` seen at namespace brace
// depth (<= 1); the segment is a constructor iff the last two name
// components match (`CommitStats::CommitStats(`). Qualified calls inside
// function bodies sit at depth >= 2 and cannot flip the segment.
// ---------------------------------------------------------------------------
class HotPathStringStatsRule : public Rule {
 public:
  std::string id() const override { return "hot-path-string-stats"; }
  std::string description() const override {
    return "no string-keyed StatsRegistry lookups in cycle-loop TUs outside "
           "a stats-struct constructor (resolve handles once; docs/STATS.md)";
  }
  bool applies_to(const std::string& rel) const override {
    if (rel == "src/core/engine.cpp" || rel == "src/core/lsq_refresh.cpp" ||
        rel == "src/trace/tracegen.cpp") {
      return true;
    }
    if (starts_with(rel, "src/bpred/")) return true;
    return starts_with(rel, "src/core/") && ends_with(rel, "_stage.cpp");
  }
  void check(const std::string& rel, const std::vector<Token>& all,
             std::vector<Finding>& out) const override {
    const std::vector<Token> toks = code_tokens(all);
    int depth = 0;
    bool in_ctor = false;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (is_punct(t, "{")) ++depth;
      if (is_punct(t, "}")) --depth;

      // Function-definition header at namespace level: segment boundary.
      if (is_punct(t, "(") && depth <= 1 && i >= 3 &&
          toks[i - 1].kind == TokKind::kIdentifier &&
          is_punct(toks[i - 2], "::")) {
        if (is_punct(toks[i - 3], "~")) {
          in_ctor = false;  // destructor
        } else {
          in_ctor = toks[i - 3].kind == TokKind::kIdentifier &&
                    toks[i - 3].text == toks[i - 1].text;
        }
      }

      if (t.kind == TokKind::kIdentifier &&
          (t.text == "counter" || t.text == "occupancy") && !in_ctor &&
          i + 2 < toks.size() && is_punct(toks[i + 1], "(") &&
          toks[i + 2].kind == TokKind::kString) {
        out.push_back({rel, t.line, id(),
                       "string-keyed StatsRegistry::" + t.text + "(" +
                           toks[i + 2].text +
                           ") in a cycle-loop TU; resolve a handle in the "
                           "stage's stats-struct constructor instead "
                           "(docs/STATS.md)"});
      }
    }
  }
};

// ---------------------------------------------------------------------------
// nondeterminism
//
// Sweep CSVs and sim reports are byte-stable for any -j and across
// hosts; CI cmp()s them. Ambient-entropy reads in src/ would silently
// break that contract. The host-throughput baselines (src/baseline/)
// time wall-clock by design; those few lines carry justified per-line
// suppressions rather than a blanket path exemption, so any *new*
// entropy source there still needs an explicit decision.
// ---------------------------------------------------------------------------
class NondeterminismRule : public Rule {
 public:
  std::string id() const override { return "nondeterminism"; }
  std::string description() const override {
    return "no ambient entropy (rand, std::random_device, time(), "
           "*_clock::now, getenv) in src/; results must be byte-stable — "
           "use resim::Rng or take values via configuration";
  }
  bool applies_to(const std::string& rel) const override {
    return starts_with(rel, "src/");
  }
  void check(const std::string& rel, const std::vector<Token>& all,
             std::vector<Finding>& out) const override {
    const std::vector<Token> toks = code_tokens(all);
    auto flag = [&](const Token& t, const std::string& what) {
      out.push_back({rel, t.line, id(),
                     what + " in library code; results must be byte-stable "
                           "(use resim::Rng from src/common/rng.hpp or pass "
                           "the value in via configuration)"});
    };
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdentifier) continue;

      // Only std:: or unqualified uses are the banned C/std entities; a
      // member (x.time()) or another namespace's name is fine.
      const bool member_use = i > 0 && (is_punct(toks[i - 1], ".") ||
                                        is_punct(toks[i - 1], "->"));
      const bool other_ns =
          i >= 2 && is_punct(toks[i - 1], "::") &&
          toks[i - 2].kind == TokKind::kIdentifier && toks[i - 2].text != "std";

      if ((t.text == "rand" || t.text == "srand" || t.text == "getenv" ||
           t.text == "time") &&
          i + 1 < toks.size() && is_punct(toks[i + 1], "(") && !member_use &&
          !other_ns) {
        flag(t, "call to " + t.text + "()");
      }
      if (t.text == "random_device" && !member_use && !other_ns) {
        flag(t, "std::random_device");
      }
      if (ends_with(t.text, "_clock") && i + 2 < toks.size() &&
          is_punct(toks[i + 1], "::") && is_ident(toks[i + 2], "now")) {
        flag(t, "wall-clock read " + t.text + "::now()");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// iostream-in-lib
//
// The driver and CLI own all terminal output; library code returns
// strings or writes to a caller-provided std::ostream&. A stray
// std::cout deep in the engine would interleave with sweep CSVs and
// break byte-stable output.
// ---------------------------------------------------------------------------
class IostreamInLibRule : public Rule {
 public:
  std::string id() const override { return "iostream-in-lib"; }
  std::string description() const override {
    return "no std::cout/std::cerr/std::clog (or #include <iostream>) in "
           "src/; the driver and CLI own all terminal output";
  }
  bool applies_to(const std::string& rel) const override {
    return starts_with(rel, "src/");
  }
  void check(const std::string& rel, const std::vector<Token>& all,
             std::vector<Finding>& out) const override {
    const std::vector<Token> toks = code_tokens(all);
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (is_ident(t, "std") && i + 2 < toks.size() &&
          is_punct(toks[i + 1], "::") &&
          (is_ident(toks[i + 2], "cout") || is_ident(toks[i + 2], "cerr") ||
           is_ident(toks[i + 2], "clog"))) {
        out.push_back({rel, t.line, id(),
                       "std::" + toks[i + 2].text +
                           " in library code; return a string or take a "
                           "std::ostream& — the driver/CLI own output"});
      }
      if (is_punct(t, "#") && i + 4 < toks.size() &&
          is_ident(toks[i + 1], "include") && is_punct(toks[i + 2], "<") &&
          is_ident(toks[i + 3], "iostream") && is_punct(toks[i + 4], ">")) {
        out.push_back({rel, t.line, id(),
                       "#include <iostream> in library code; include "
                       "<ostream>/<istream> for stream types instead"});
      }
    }
  }
};

// ---------------------------------------------------------------------------
// anonymous-throw
//
// The trace container and config planes promise that every rejection
// names the offending field or dotted path (docs/TRACE_FORMAT.md,
// docs/CONFIG.md); CI greps stderr for those names. A message-less
// throw breaks the contract.
// ---------------------------------------------------------------------------
class AnonymousThrowRule : public Rule {
 public:
  std::string id() const override { return "anonymous-throw"; }
  std::string description() const override {
    return "throw sites in src/trace/ and src/config/ must carry a message "
           "naming the offending field/path (bare rethrow is fine)";
  }
  bool applies_to(const std::string& rel) const override {
    return starts_with(rel, "src/trace/") || starts_with(rel, "src/config/");
  }
  void check(const std::string& rel, const std::vector<Token>& all,
             std::vector<Finding>& out) const override {
    const std::vector<Token> toks = code_tokens(all);
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!is_ident(toks[i], "throw")) continue;
      // Walk the thrown type name (idents, ::, template args); stop at
      // the constructor's opening bracket or at ';' (bare rethrow /
      // rethrowing an existing object).
      std::size_t j = i + 1;
      while (j < toks.size() &&
             (toks[j].kind == TokKind::kIdentifier || is_punct(toks[j], "::") ||
              is_punct(toks[j], "<") || is_punct(toks[j], ">") ||
              is_punct(toks[j], ","))) {
        ++j;
      }
      if (j + 1 >= toks.size()) continue;
      const bool empty_parens = is_punct(toks[j], "(") && is_punct(toks[j + 1], ")");
      const bool empty_braces = is_punct(toks[j], "{") && is_punct(toks[j + 1], "}");
      if (empty_parens || empty_braces) {
        out.push_back({rel, toks[i].line, id(),
                       "throw constructs an exception with no message; "
                       "trace/config errors must name the offending "
                       "field or dotted path"});
      }
    }
  }
};

// ---------------------------------------------------------------------------
// include-guard
//
// Every header carries a path-derived include guard
// (RESIM_<DIRS>_<NAME>_H with src/ stripped; a leading component equal
// to the project prefix folds in: src/resim/resim.hpp -> RESIM_RESIM_H)
// as the first directive, a matching #define, and ends on the guard's
// #endif.
// This doubles as the cheap self-containment check: nothing may precede
// the guard or follow its #endif.
// ---------------------------------------------------------------------------
class IncludeGuardRule : public Rule {
 public:
  std::string id() const override { return "include-guard"; }
  std::string description() const override {
    return "headers carry a path-derived include guard "
           "(#ifndef RESIM_<DIRS>_<NAME>_H first, matching #define, file "
           "ends on the guard's #endif)";
  }
  bool applies_to(const std::string& rel) const override {
    return ends_with(rel, ".hpp") || ends_with(rel, ".h") ||
           ends_with(rel, ".hh");
  }
  static std::string expected_guard(const std::string& rel) {
    std::string path = rel;
    if (starts_with(path, "src/")) path = path.substr(4);
    const std::size_t dot = path.rfind('.');
    if (dot != std::string::npos) path = path.substr(0, dot);
    std::vector<std::string> parts;
    std::string cur;
    for (const char c : path + "/") {
      if (c == '/') {
        if (!cur.empty()) parts.push_back(cur);
        cur.clear();
      } else if ((c >= 'a' && c <= 'z')) {
        cur += static_cast<char>(c - 'a' + 'A');
      } else if ((c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) {
        cur += c;
      } else {
        cur += '_';
      }
    }
    std::string guard = "RESIM";
    for (std::size_t i = 0; i < parts.size(); ++i) {
      // A leading component that *is* the project prefix folds into it:
      // src/resim/resim.hpp -> RESIM_RESIM_H, not RESIM_RESIM_RESIM_H.
      if (i == 0 && parts[i] == "RESIM") continue;
      guard += "_" + parts[i];
    }
    return guard + "_H";
  }
  void check(const std::string& rel, const std::vector<Token>& all,
             std::vector<Finding>& out) const override {
    const std::vector<Token> toks = code_tokens(all);
    const std::string want = expected_guard(rel);
    if (toks.size() < 6 || !is_punct(toks[0], "#") ||
        !is_ident(toks[1], "ifndef") ||
        toks[2].kind != TokKind::kIdentifier) {
      out.push_back({rel, toks.empty() ? 1 : toks[0].line, id(),
                     "missing include guard: the first directive must be "
                     "#ifndef " + want});
      return;
    }
    const std::string guard = toks[2].text;
    if (guard != want) {
      out.push_back({rel, toks[2].line, id(),
                     "include guard '" + guard + "' should be '" + want +
                         "' (derived from the header's path)"});
    }
    if (!is_punct(toks[3], "#") || !is_ident(toks[4], "define") ||
        toks[5].kind != TokKind::kIdentifier || toks[5].text != guard) {
      out.push_back({rel, toks[3].line, id(),
                     "#ifndef " + guard +
                         " must be followed immediately by #define " + guard});
    }
    if (!is_punct(toks[toks.size() - 2], "#") ||
        !is_ident(toks.back(), "endif")) {
      out.push_back({rel, toks.back().line, id(),
                     "header must end on the include guard's #endif "
                     "(no tokens after it)"});
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> default_rules() {
  std::vector<std::unique_ptr<Rule>> out;
  out.push_back(std::make_unique<HotPathStringStatsRule>());
  out.push_back(std::make_unique<NondeterminismRule>());
  out.push_back(std::make_unique<IostreamInLibRule>());
  out.push_back(std::make_unique<AnonymousThrowRule>());
  out.push_back(std::make_unique<IncludeGuardRule>());
  return out;
}

}  // namespace resim::analysis
