// The cross-TU resim_lint rules, over the RepoIndex
// (src/analysis/index.hpp). Each one mechanizes an invariant that lives
// *between* translation units and that no per-file rule could see:
//
//   layering           the subsystem DAG declared below, plus
//                      include-cycle detection
//   registry-drift     CoreConfig's flattened field set == the set of
//                      ParamRegistry registrations in param_registry.cpp
//   enum-string-drift  CLI-facing enums and their positional spelling
//                      tables in names.cpp stay the same length
//   lock-discipline    TUs that declare mutex members take locks through
//                      RAII guards and pass predicates to cv.wait()
//
// docs/LINT.md carries the catalog with rationale; docs/ARCHITECTURE.md
// is generated from the same DAG via `resim_lint --graph dot`.
#include <algorithm>
#include <cstddef>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/index.hpp"
#include "analysis/lint.hpp"

namespace resim::analysis {

namespace {

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}
bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdentifier && t.text == text;
}

// ---------------------------------------------------------------------------
// layering
//
// The declared subsystem DAG. Each entry lists *direct* allowed
// dependencies; a subsystem may also include anything its dependencies
// reach (the closure), and itself. `tests` is exempt by explicit rule
// configuration — test TUs may reach into any layer, including each
// other's fixtures. Library code can never include tools/bench/examples/
// tests because no src subsystem lists them (and they are not reachable
// from any src entry).
// ---------------------------------------------------------------------------
const std::map<std::string, std::vector<std::string>>& layer_spec() {
  static const std::map<std::string, std::vector<std::string>> spec{
      {"common", {}},
      {"isa", {"common"}},
      {"cache", {"common"}},
      {"analysis", {"common"}},  // depends only on common, by decree
      {"funcsim", {"isa"}},
      {"bpred", {"isa"}},
      {"codegen", {"bpred"}},
      {"workload", {"funcsim"}},
      {"trace", {"workload", "bpred"}},
      {"core", {"trace", "cache"}},
      {"fpga", {"core"}},
      {"config", {"core"}},
      {"baseline", {"core"}},
      // The driver sits on top of the library: it may see everything
      // below via the closure of these four.
      {"driver", {"config", "baseline", "fpga", "codegen"}},
      {"resim", {"driver"}},  // umbrella header re-exports the library
      // The serve daemon wraps the driver's batch machinery behind a
      // socket; nothing below it may know the daemon exists.
      {"serve", {"resim"}},
      {"tools", {"resim", "analysis", "serve"}},
      {"bench", {"resim"}},
      {"examples", {"resim"}},
  };
  return spec;
}

const std::set<std::string>& layer_exempt() {
  static const std::set<std::string> exempt{"tests"};
  return exempt;
}

/// allowed[s] = {s} ∪ every subsystem reachable from s in the spec.
std::map<std::string, std::set<std::string>> layer_closure() {
  std::map<std::string, std::set<std::string>> out;
  for (const auto& [sub, deps] : layer_spec()) {
    std::set<std::string>& seen = out[sub];
    std::vector<std::string> work{sub};
    while (!work.empty()) {
      const std::string cur = work.back();
      work.pop_back();
      if (!seen.insert(cur).second) continue;
      const auto it = layer_spec().find(cur);
      if (it == layer_spec().end()) continue;
      for (const std::string& d : it->second) work.push_back(d);
    }
  }
  return out;
}

class LayeringRule : public TreeRule {
 public:
  std::string id() const override { return "layering"; }
  std::string description() const override {
    return "includes must follow the declared subsystem DAG (no upward or "
           "sideways edges, no include cycles; docs/ARCHITECTURE.md)";
  }

  void check(const RepoIndex& index, std::vector<Finding>& out) const override {
    const auto closure = layer_closure();
    const auto& files = index.files();

    // Undeclared subsystems fail closed: a new top-level directory must
    // take a position in the DAG before the tree is considered clean.
    std::set<std::string> reported_unknown;
    for (const FileInfo& f : files) {
      if (layer_exempt().count(f.subsystem) ||
          layer_spec().count(f.subsystem) ||
          !reported_unknown.insert(f.subsystem).second) {
        continue;
      }
      out.push_back({f.path, 0, id(),
                     "subsystem '" + f.subsystem +
                         "' is not declared in the layering DAG "
                         "(src/analysis/tree_rules.cpp)"});
    }

    // Transitive reach check per file. Every violation is blamed on the
    // first DAG-breaking edge of its shortest include chain, so one bad
    // #include yields one finding per harmed subsystem, not one per
    // downstream file.
    struct Blame {
      Finding finding;
      std::size_t chain_len = 0;
    };
    std::map<std::string, Blame> blamed;  // dedupe key -> best chain

    for (std::size_t i = 0; i < files.size(); ++i) {
      const std::string& sub = files[i].subsystem;
      if (layer_exempt().count(sub)) continue;
      const auto cl = closure.find(sub);
      if (cl == closure.end()) continue;  // unknown: reported above
      const std::set<std::string>& allowed = cl->second;

      const std::vector<std::size_t> parent = index.bfs_parents(i);
      for (std::size_t j = 0; j < files.size(); ++j) {
        if (parent[j] == RepoIndex::npos || j == i) continue;
        if (allowed.count(files[j].subsystem)) continue;

        std::vector<std::size_t> chain;
        for (std::size_t v = j;; v = parent[v]) {
          chain.push_back(v);
          if (v == i) break;
        }
        std::reverse(chain.begin(), chain.end());
        // First edge whose target leaves the allowed set.
        std::size_t bad = 1;
        while (bad < chain.size() &&
               allowed.count(files[chain[bad]].subsystem)) {
          ++bad;
        }
        const std::size_t from = chain[bad - 1], to = chain[bad];
        int line = 0;
        for (const auto& [tgt, ln] : index.edges_of(from)) {
          if (tgt == to) {
            line = ln;
            break;
          }
        }
        std::string chain_text;
        for (std::size_t v : chain) {
          if (!chain_text.empty()) chain_text += " -> ";
          chain_text += files[v].path;
        }
        Finding f{files[from].path, line, id(),
                  "subsystem '" + sub + "' may not depend on '" +
                      files[j].subsystem + "' (chain: " + chain_text + ")"};
        const std::string key = files[from].path + "#" +
                                std::to_string(line) + "#" + sub + "#" +
                                files[j].subsystem;
        const auto it = blamed.find(key);
        if (it == blamed.end() || chain.size() < it->second.chain_len) {
          blamed[key] = {std::move(f), chain.size()};
        }
      }
    }
    for (auto& [key, b] : blamed) out.push_back(std::move(b.finding));

    for (const std::vector<std::string>& cyc : index.include_cycles()) {
      int line = 0;
      const std::size_t a = index.index_of(cyc[0]);
      const std::size_t b = index.index_of(cyc[1]);
      for (const auto& [tgt, ln] : index.edges_of(a)) {
        if (tgt == b) {
          line = ln;
          break;
        }
      }
      std::string text;
      for (const std::string& p : cyc) {
        if (!text.empty()) text += " -> ";
        text += p;
      }
      out.push_back({cyc[0], line, id(), "include cycle: " + text});
    }
  }
};

// ---------------------------------------------------------------------------
// registry-drift
//
// PR 3's declarative config plane only works if ParamRegistry reflects
// every CoreConfig field: a knob missing from param_registry.cpp is
// silently unreachable from --set/sweep specs, and a registration whose
// accessor names a removed field is dead weight. The rule flattens
// CoreConfig (recursing into fields whose type is itself an indexed
// record) and compares against the RESIM_ACC(field, ...) accessor
// expressions scanned from param_registry.cpp — including those inside
// registration macros such as RESIM_CACHE_PARAMS, which are expanded
// textually with their invocation arguments substituted.
// ---------------------------------------------------------------------------
constexpr const char* kRegistryFile = "src/config/param_registry.cpp";
constexpr const char* kRootConfigRecord = "CoreConfig";
constexpr const char* kAccessorMacro = "RESIM_ACC";

/// A function-like macro definition scanned from a directive extent.
struct MacroDef {
  std::vector<std::string> params;
  std::vector<Token> body;
};

bool is_registration_ident(const Token& t) {
  return t.kind == TokKind::kIdentifier &&
         (t.text == "uint_p" || t.text == "bool_p" || t.text == "enum_p");
}

/// Splits the argument tokens of a call starting at the `(` at
/// `open` into top-level comma-separated groups; returns the index just
/// past the closing `)` (or `end` when unbalanced).
std::size_t split_call_args(const std::vector<Token>& toks, std::size_t open,
                            std::size_t end,
                            std::vector<std::vector<Token>>* args) {
  std::vector<Token> cur;
  int depth = 0;
  std::size_t i = open;
  for (; i < end; ++i) {
    const Token& t = toks[i];
    if (is_punct(t, "(") || is_punct(t, "{") || is_punct(t, "[")) ++depth;
    if (is_punct(t, ")") || is_punct(t, "}") || is_punct(t, "]")) {
      --depth;
      if (depth == 0) break;
    }
    if (depth == 1 && is_punct(t, ",")) {
      args->push_back(std::move(cur));
      cur.clear();
      continue;
    }
    if (depth >= 1 && !(depth == 1 && i == open)) cur.push_back(t);
  }
  if (!cur.empty()) args->push_back(std::move(cur));
  return i < end ? i + 1 : end;
}

class RegistryDriftRule : public TreeRule {
 public:
  std::string id() const override { return "registry-drift"; }
  std::string description() const override {
    return "every CoreConfig field has a ParamRegistry registration in "
           "param_registry.cpp and vice versa (docs/CONFIG.md)";
  }

  void check(const RepoIndex& index, std::vector<Finding>& out) const override {
    const FileInfo* reg = index.file(kRegistryFile);
    const auto [root_file, root] = index.find_record(kRootConfigRecord);
    // Partial runs (a dirs subset that misses either side) check nothing
    // rather than reporting the whole world as drifted.
    if (reg == nullptr || root == nullptr) return;

    // Expected: the flattened field set of CoreConfig.
    struct Expected {
      std::string file;
      int line = 0;
    };
    std::map<std::string, Expected> expected;
    flatten(index, *root_file, *root, "", 0, &expected);

    // Registered: RESIM_ACC(<field-expr>, ...) accessor expressions from
    // the registry TU, with registration macros expanded.
    std::map<std::string, int> registered;  // field expr -> line
    scan_registry(*reg, &registered);
    if (registered.empty()) return;  // scan failed wholesale: stay silent

    for (const auto& [field, where] : expected) {
      if (registered.count(field)) continue;
      out.push_back({where.file, where.line, id(),
                     "config field '" + field +
                         "' has no ParamRegistry registration in " +
                         kRegistryFile});
    }
    for (const auto& [field, line] : registered) {
      if (expected.count(field)) continue;
      out.push_back({reg->path, line, id(),
                     "registration accessor names no CoreConfig field '" +
                         field + "'"});
    }
  }

 private:
  template <typename Map>
  static void flatten(const RepoIndex& index, const FileInfo& file,
                      const RecordDecl& rec, const std::string& prefix,
                      int depth, Map* out) {
    if (depth > 8) return;
    for (const FieldDecl& f : rec.fields) {
      const std::string path = prefix.empty() ? f.name : prefix + "." + f.name;
      const auto [sub_file, sub] = index.find_record(f.type_tail);
      if (sub != nullptr && sub != &rec) {
        flatten(index, *sub_file, *sub, path, depth + 1, out);
      } else {
        (*out)[path] = {file.path, f.line};
      }
    }
  }

  static void scan_registry(const FileInfo& reg,
                            std::map<std::string, int>* registered) {
    const std::vector<Token>& toks = reg.tokens;

    // Function-like macro definitions, keyed by name.
    std::map<std::string, MacroDef> macros;
    for (const DirectiveRange& d : reg.directives) {
      if (d.end - d.begin < 4 || !is_ident(toks[d.begin + 1], "define")) {
        continue;
      }
      const Token& name = toks[d.begin + 2];
      if (name.kind != TokKind::kIdentifier ||
          !is_punct(toks[d.begin + 3], "(")) {
        continue;
      }
      MacroDef def;
      std::size_t i = d.begin + 4;
      for (; i < d.end && !is_punct(toks[i], ")"); ++i) {
        if (toks[i].kind == TokKind::kIdentifier) {
          def.params.push_back(toks[i].text);
        }
      }
      for (++i; i < d.end; ++i) def.body.push_back(toks[i]);
      macros[name.text] = std::move(def);
    }

    // Expand invocations of macros whose body registers params, so the
    // RESIM_ACC / uint_p patterns inside become visible. Everything else
    // (including RESIM_ACC itself) is left as written — its call shape
    // IS the pattern we scan for.
    const auto registers_params = [](const MacroDef& def) {
      for (const Token& t : def.body) {
        if (is_registration_ident(t)) return true;
      }
      return false;
    };
    std::vector<Token> code;
    {
      std::size_t d = 0;
      for (std::size_t i = 0; i < toks.size(); ++i) {
        while (d < reg.directives.size() && reg.directives[d].end <= i) ++d;
        const bool in_dir = d < reg.directives.size() &&
                            i >= reg.directives[d].begin &&
                            i < reg.directives[d].end;
        if (in_dir || toks[i].kind == TokKind::kComment) continue;
        code.push_back(toks[i]);
      }
    }
    std::vector<Token> flat;
    flat.reserve(code.size());
    for (std::size_t i = 0; i < code.size(); ++i) {
      const Token& t = code[i];
      const auto mac = t.kind == TokKind::kIdentifier
                           ? macros.find(t.text)
                           : macros.end();
      if (mac == macros.end() || !registers_params(mac->second) ||
          i + 1 >= code.size() || !is_punct(code[i + 1], "(")) {
        flat.push_back(t);
        continue;
      }
      std::vector<std::vector<Token>> args;
      const std::size_t next = split_call_args(code, i + 1, code.size(), &args);
      for (const Token& b : mac->second.body) {
        bool substituted = false;
        if (b.kind == TokKind::kIdentifier) {
          for (std::size_t p = 0; p < mac->second.params.size(); ++p) {
            if (mac->second.params[p] == b.text && p < args.size()) {
              for (const Token& a : args[p]) {
                Token copy = a;
                copy.line = t.line;  // anchor findings at the invocation
                flat.push_back(copy);
              }
              substituted = true;
              break;
            }
          }
        }
        if (!substituted) {
          Token copy = b;
          copy.line = t.line;
          flat.push_back(copy);
        }
      }
      i = next - 1;
    }

    // Scan the flat stream: every uint_p/bool_p/enum_p call contributes
    // one registration; its RESIM_ACC first argument, texts joined, is
    // the field expression ("mem.l1i.size_bytes").
    for (std::size_t i = 0; i + 1 < flat.size(); ++i) {
      if (!is_registration_ident(flat[i]) || !is_punct(flat[i + 1], "(")) {
        continue;
      }
      std::vector<std::vector<Token>> args;
      split_call_args(flat, i + 1, flat.size(), &args);
      for (const std::vector<Token>& arg : args) {
        for (std::size_t k = 0; k + 1 < arg.size(); ++k) {
          if (!is_ident(arg[k], kAccessorMacro) || !is_punct(arg[k + 1], "(")) {
            continue;
          }
          std::vector<std::vector<Token>> acc_args;
          split_call_args(arg, k + 1, arg.size(), &acc_args);
          if (acc_args.empty() || acc_args[0].empty()) continue;
          std::string expr;
          for (const Token& e : acc_args[0]) expr += e.text;
          (*registered)[expr] = arg[k].line;
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// enum-string-drift
//
// The CLI/CSV/registry spelling tables in src/config/names.cpp are
// positional: names()[static_cast<size_t>(kind)]. That breaks silently
// when an enumerator is added without a spelling, a spelling outlives
// its enumerator, or someone gives an enumerator an explicit value. The
// rule pairs each CLI-facing enum with its table and compares lengths.
// ---------------------------------------------------------------------------
constexpr const char* kNamesFile = "src/config/names.cpp";

struct EnumPair {
  const char* enum_name;
  const char* names_fn;
};
constexpr EnumPair kEnumPairs[] = {
    {"DirKind", "dir_kind_names"},
    {"PipelineVariant", "variant_names"},
    {"ReplPolicy", "repl_names"},
    {"TraceBackend", "trace_backend_names"},
};

class EnumStringDriftRule : public TreeRule {
 public:
  std::string id() const override { return "enum-string-drift"; }
  std::string description() const override {
    return "CLI-facing enums and their positional spelling tables in "
           "names.cpp cover each other exactly (docs/CONFIG.md)";
  }

  void check(const RepoIndex& index, std::vector<Finding>& out) const override {
    const FileInfo* names = index.file(kNamesFile);
    if (names == nullptr) return;  // partial run

    for (const EnumPair& pair : kEnumPairs) {
      const auto [efile, decl] = index.find_enum(pair.enum_name);
      if (decl == nullptr) continue;  // partial run without the header

      std::vector<Token> spellings;
      int fn_line = 0;
      if (!scan_names_fn(*names, pair.names_fn, &spellings, &fn_line)) {
        out.push_back({names->path, 0, id(),
                       std::string("no spelling table '") + pair.names_fn +
                           "' found for enum '" + pair.enum_name + "'"});
        continue;
      }

      if (decl->has_explicit_values) {
        out.push_back({efile->path, decl->line, id(),
                       std::string("enum '") + pair.enum_name +
                           "' has explicit enumerator values; the " +
                           pair.names_fn + " table is positional"});
      }

      for (std::size_t i = spellings.size(); i < decl->enumerators.size();
           ++i) {
        out.push_back({efile->path, decl->line, id(),
                       "enumerator '" + decl->enumerators[i] + "' of '" +
                           pair.enum_name + "' has no spelling in " +
                           pair.names_fn + " (" + kNamesFile + ")"});
      }
      for (std::size_t i = decl->enumerators.size(); i < spellings.size();
           ++i) {
        out.push_back({names->path, spellings[i].line, id(),
                       "spelling " + spellings[i].text + " in " +
                           pair.names_fn + " names no enumerator of '" +
                           pair.enum_name + "' (dead entry)"});
      }

      std::set<std::string> seen;
      for (const Token& s : spellings) {
        if (!seen.insert(s.text).second) {
          out.push_back({names->path, s.line, id(),
                         "duplicate spelling " + s.text + " in " +
                             pair.names_fn});
        }
      }
    }
  }

 private:
  /// Finds `fn() { ... = { "a", "b", ... }; ... }` and collects the
  /// string-literal tokens of the first braced initializer after an `=`.
  static bool scan_names_fn(const FileInfo& file, const std::string& fn,
                            std::vector<Token>* spellings, int* fn_line) {
    const std::vector<Token>& toks = file.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!(toks[i].kind == TokKind::kIdentifier && toks[i].text == fn) ||
          !is_punct(toks[i + 1], "(") || !is_punct(toks[i + 2], ")")) {
        continue;
      }
      *fn_line = toks[i].line;
      std::size_t j = i + 3;
      while (j < toks.size() && !is_punct(toks[j], "=") &&
             !is_punct(toks[j], ";")) {
        ++j;
      }
      if (j >= toks.size() || is_punct(toks[j], ";")) return false;
      while (j < toks.size() && !is_punct(toks[j], "{")) ++j;
      if (j >= toks.size()) return false;
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (is_punct(toks[j], "{")) ++depth;
        if (is_punct(toks[j], "}") && --depth == 0) break;
        if (toks[j].kind == TokKind::kString) spellings->push_back(toks[j]);
      }
      return true;
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// lock-discipline
//
// The TSan CI leg only proves the schedules it happens to run; this rule
// makes the repo's locking *convention* static. In any file that deals
// in mutexes — declares one as a member or local, or directly includes a
// header whose records do — locks may only be taken through RAII guards
// (std::lock_guard / unique_lock / scoped_lock), never raw
// .lock()/.unlock(); and condition_variable::wait must use the predicate
// overload (a single-argument .wait(lk) misses spurious wakeups).
// ---------------------------------------------------------------------------
class LockDisciplineRule : public TreeRule {
 public:
  std::string id() const override { return "lock-discipline"; }
  std::string description() const override {
    return "mutex-holding TUs take locks via RAII guards only and pass "
           "predicates to condition_variable::wait";
  }

  void check(const RepoIndex& index, std::vector<Finding>& out) const override {
    for (std::size_t i = 0; i < index.files().size(); ++i) {
      const FileInfo& f = index.files()[i];
      if (!in_scope(index, i)) continue;

      const std::vector<Token>& toks = f.tokens;
      for (std::size_t k = 0; k + 2 < toks.size(); ++k) {
        if (toks[k].kind == TokKind::kComment) continue;
        if (!is_punct(toks[k], ".") && !is_punct(toks[k], "->")) continue;
        const Token& name = toks[k + 1];
        if (!is_punct(toks[k + 2], "(")) continue;
        if (is_ident(name, "lock") || is_ident(name, "unlock")) {
          out.push_back({f.path, name.line, id(),
                         "raw ." + name.text +
                             "() call; take locks via std::lock_guard/"
                             "unique_lock/scoped_lock"});
        } else if (is_ident(name, "wait") && arg_count(toks, k + 2) == 1) {
          out.push_back({f.path, name.line, id(),
                         "condition_variable::wait without a predicate; use "
                         "wait(lock, [&]{ ... })"});
        }
      }
    }
  }

 private:
  /// In scope: the file declares a sync member/local itself, or directly
  /// includes an indexed header whose records do.
  static bool in_scope(const RepoIndex& index, std::size_t i) {
    const FileInfo& f = index.files()[i];
    if (declares_sync(f)) return true;
    for (const auto& [j, line] : index.edges_of(i)) {
      const FileInfo& inc = index.files()[j];
      for (const RecordDecl& r : inc.records) {
        if (r.has_sync_member()) return true;
      }
    }
    return false;
  }

  static bool declares_sync(const FileInfo& f) {
    for (const RecordDecl& r : f.records) {
      if (r.has_sync_member()) return true;
    }
    // Locals / globals: `std::mutex m;` anywhere in the token stream.
    const std::vector<Token>& toks = f.tokens;
    for (std::size_t k = 0; k + 2 < toks.size(); ++k) {
      if (is_ident(toks[k], "std") && is_punct(toks[k + 1], "::") &&
          toks[k + 2].kind == TokKind::kIdentifier &&
          (toks[k + 2].text == "mutex" ||
           toks[k + 2].text == "condition_variable") &&
          k + 3 < toks.size() && toks[k + 3].kind == TokKind::kIdentifier) {
        return true;
      }
    }
    return false;
  }

  /// Number of top-level arguments of the call whose `(` sits at `open`.
  static int arg_count(const std::vector<Token>& toks, std::size_t open) {
    int depth = 0, commas = 0;
    bool any = false;
    for (std::size_t i = open; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind == TokKind::kComment) continue;
      if (is_punct(t, "(") || is_punct(t, "{") || is_punct(t, "[")) {
        ++depth;
        continue;
      }
      if (is_punct(t, ")") || is_punct(t, "}") || is_punct(t, "]")) {
        if (--depth == 0) break;
        continue;
      }
      if (depth == 1) {
        any = true;
        if (is_punct(t, ",")) ++commas;
      }
    }
    return any ? commas + 1 : 0;
  }
};

}  // namespace

std::vector<std::unique_ptr<TreeRule>> default_tree_rules() {
  std::vector<std::unique_ptr<TreeRule>> out;
  out.push_back(std::make_unique<LayeringRule>());
  out.push_back(std::make_unique<RegistryDriftRule>());
  out.push_back(std::make_unique<EnumStringDriftRule>());
  out.push_back(std::make_unique<LockDisciplineRule>());
  return out;
}

}  // namespace resim::analysis
