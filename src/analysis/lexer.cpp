#include "analysis/lexer.hpp"

#include <cctype>

namespace resim::analysis {

namespace {

/// Character cursor over the source with translation-phase-2 semantics:
/// a backslash immediately followed by a newline splices the two lines.
/// peek() looks through splices without consuming; get() consumes them
/// and advances the physical line counter, so tokens report the line
/// their first character actually sits on. Raw-string bodies must not
/// splice, hence the raw accessors.
class Cursor {
 public:
  explicit Cursor(const std::string& s) : s_(s) {}

  bool eof() const { return skip(pos_) >= s_.size(); }

  /// Character `ahead` positions past the cursor, looking through
  /// splices; '\0' at end of input.
  char peek(std::size_t ahead = 0) const {
    std::size_t p = skip(pos_);
    while (ahead-- > 0 && p < s_.size()) p = skip(p + 1);
    return p < s_.size() ? s_[p] : '\0';
  }

  char get() {
    while (is_splice(pos_)) {
      pos_ += splice_len(pos_);
      ++line_;
    }
    if (pos_ >= s_.size()) return '\0';
    const char c = s_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  /// Raw (no-splice) accessors for raw-string literal bodies, where a
  /// backslash-newline is two ordinary characters.
  bool raw_eof() const { return pos_ >= s_.size(); }
  char raw_peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  char raw_get() {
    if (pos_ >= s_.size()) return '\0';
    const char c = s_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  int line() const { return line_; }

 private:
  bool is_splice(std::size_t p) const {
    return p + 1 < s_.size() && s_[p] == '\\' &&
           (s_[p + 1] == '\n' ||
            (s_[p + 1] == '\r' && p + 2 < s_.size() && s_[p + 2] == '\n'));
  }
  std::size_t splice_len(std::size_t p) const {
    return s_[p + 1] == '\r' ? 3 : 2;
  }
  /// Pure splice skip for the const lookahead path.
  std::size_t skip(std::size_t p) const {
    while (is_splice(p)) p += splice_len(p);
    return p;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}
bool ident_char(char c) {
  return ident_start(c) || std::isdigit(static_cast<unsigned char>(c));
}

/// True when `prefix` is a valid string/char encoding prefix (u8, u, U,
/// L), optionally ending in R for raw strings.
bool is_encoding_prefix(const std::string& p, bool& raw) {
  std::string q = p;
  raw = false;
  if (!q.empty() && q.back() == 'R') {
    raw = true;
    q.pop_back();
  }
  return q.empty() || q == "u8" || q == "u" || q == "U" || q == "L";
}

}  // namespace

std::vector<Token> tokenize(const std::string& source) {
  std::vector<Token> out;
  Cursor c(source);

  // Directive-start tracking: `at_line_start` is true until a non-comment
  // token is emitted on the current logical line. Comments count as
  // whitespace (a `#` after `/* ... */` at line start still begins a
  // directive); splice newlines are consumed inside Cursor::get() and never
  // reach the whitespace branch below, so continuation lines of a `#define`
  // correctly do not reset it.
  bool at_line_start = true;
  auto push = [&](TokKind kind, std::string text, int line) {
    out.push_back({kind, std::move(text), line, at_line_start});
    if (kind != TokKind::kComment) at_line_start = false;
  };

  auto lex_quoted = [&](char quote, std::string& text) {
    // `text` already holds the opening prefix + quote.
    while (!c.eof()) {
      const char ch = c.peek();
      if (ch == '\n') break;  // unterminated: stop at end of line
      text += c.get();
      if (ch == '\\' && !c.eof() && c.peek() != '\n') {
        text += c.get();  // escaped character, including \" and \'
        continue;
      }
      if (ch == quote) break;
    }
  };

  auto lex_raw_string = [&](std::string& text) {
    // Opening quote already consumed; parse the d-char-seq up to '('.
    std::string delim;
    while (!c.raw_eof() && c.raw_peek() != '(' && c.raw_peek() != '\n' &&
           c.raw_peek() != '"' && delim.size() < 16) {
      delim += c.raw_get();
    }
    text += delim;
    if (c.raw_peek() != '(') return;  // malformed; keep what we have
    text += c.raw_get();
    const std::string closer = ")" + delim + "\"";
    while (!c.raw_eof()) {
      text += c.raw_get();
      if (text.size() >= closer.size() &&
          text.compare(text.size() - closer.size(), closer.size(), closer) ==
              0) {
        break;
      }
    }
  };

  while (!c.eof()) {
    const char ch = c.peek();
    const int line = c.line();

    if (ch == '\n' || ch == '\r' || ch == '\t' || ch == ' ' || ch == '\f' ||
        ch == '\v') {
      if (ch == '\n') at_line_start = true;
      c.get();
      continue;
    }

    // Comments.
    if (ch == '/' && c.peek(1) == '/') {
      std::string text;
      while (!c.eof() && c.peek() != '\n') text += c.get();
      push(TokKind::kComment, text, line);
      continue;
    }
    if (ch == '/' && c.peek(1) == '*') {
      std::string text;
      text += c.get();
      text += c.get();
      while (!c.eof()) {
        const char k = c.get();
        text += k;
        if (k == '*' && c.peek() == '/') {
          text += c.get();
          break;
        }
      }
      push(TokKind::kComment, text, line);
      continue;
    }

    // Identifiers, possibly an encoding prefix of a string/char literal.
    if (ident_start(ch)) {
      std::string text;
      while (!c.eof() && ident_char(c.peek())) text += c.get();
      bool raw = false;
      if ((c.peek() == '"' || c.peek() == '\'') &&
          is_encoding_prefix(text, raw)) {
        const char quote = c.peek();
        text += c.get();
        if (raw && quote == '"') {
          lex_raw_string(text);
        } else {
          lex_quoted(quote, text);
        }
        push(quote == '"' ? TokKind::kString : TokKind::kCharLit, text, line);
        continue;
      }
      push(TokKind::kIdentifier, text, line);
      continue;
    }

    // Numbers (pp-number: digits, idents, separators, exponent signs).
    if (std::isdigit(static_cast<unsigned char>(ch)) ||
        (ch == '.' && std::isdigit(static_cast<unsigned char>(c.peek(1))))) {
      std::string text;
      while (!c.eof()) {
        const char k = c.peek();
        if (ident_char(k) || k == '.' || k == '\'') {
          text += c.get();
          if ((k == 'e' || k == 'E' || k == 'p' || k == 'P') &&
              (c.peek() == '+' || c.peek() == '-')) {
            text += c.get();
          }
        } else {
          break;
        }
      }
      push(TokKind::kNumber, text, line);
      continue;
    }

    // String / char literals with no prefix.
    if (ch == '"' || ch == '\'') {
      std::string text;
      text += c.get();
      lex_quoted(ch, text);
      push(ch == '"' ? TokKind::kString : TokKind::kCharLit, text, line);
      continue;
    }

    // Punctuation; merge the two digraphs the rules care about.
    std::string text(1, c.get());
    if (ch == ':' && c.peek() == ':') {
      text += c.get();
    } else if (ch == '-' && c.peek() == '>') {
      text += c.get();
    }
    push(TokKind::kPunct, text, line);
  }
  return out;
}

}  // namespace resim::analysis
