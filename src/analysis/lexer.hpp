// Lexer for resim_lint: a minimal C++ tokenizer that is exact about the
// things a source-level linter must never get wrong — comments, string
// and character literals (including encoding prefixes and raw strings),
// numeric literals with digit separators, and backslash-newline splices.
//
// It deliberately does NOT understand the full C++ grammar: rules match
// token shapes (identifier/punctuation sequences), which is enough to
// check the repo invariants in src/analysis/rules.cpp without dragging a
// real front end into the build. Comments are emitted as tokens so the
// rule engine can read per-line allow-comment suppressions (docs/LINT.md).
#ifndef RESIM_ANALYSIS_LEXER_H
#define RESIM_ANALYSIS_LEXER_H

#include <string>
#include <vector>

namespace resim::analysis {

enum class TokKind {
  kIdentifier,  ///< identifiers and keywords (the lexer does not split them)
  kNumber,      ///< pp-number: covers hex/bin/float/separators/suffixes
  kString,      ///< "..." with any encoding prefix, plus raw strings
  kCharLit,     ///< '...' with any encoding prefix
  kPunct,       ///< one punctuation char; `::` and `->` are merged
  kComment,     ///< // to end of line, or /* */ (text includes delimiters)
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  ///< 1-based line of the token's first character
  /// True when this token is the first non-whitespace, non-comment token
  /// after a *real* newline (or at start of file). Spliced continuation
  /// lines do not set it — matching the preprocessor's notion of where a
  /// directive may begin, which is what the cross-TU index keys on to
  /// delimit `#include` and `#define` extents (src/analysis/index.cpp).
  bool starts_line = false;
};

/// Tokenizes a whole translation unit. Never throws on malformed input:
/// an unterminated literal or comment becomes a token that runs to the
/// end of the line (strings/chars) or file (block comments), because a
/// linter must degrade gracefully on code the compiler would reject.
std::vector<Token> tokenize(const std::string& source);

}  // namespace resim::analysis

#endif  // RESIM_ANALYSIS_LEXER_H
