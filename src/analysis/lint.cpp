#include "analysis/lint.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace resim::analysis {

namespace {

/// Rule ids reserved for the engine's own meta-checks: an allow()
/// comment that suppresses nothing, and one that names no known rule.
constexpr const char* kUnusedSuppression = "unused-suppression";
constexpr const char* kUnknownRule = "unknown-rule";

/// One rule name parsed out of an allow-comment.
struct Suppression {
  int line = 0;
  std::string rule;
  bool used = false;
  bool unknown = false;  ///< names no registered rule (typo guard)
};

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Extracts allow()ed rule names from a comment token. The marker — the
/// linter's name, a colon, then an allow() list — can sit anywhere in
/// the comment, so a justification may precede it on the same line.
std::vector<std::string> parse_allows(const std::string& comment) {
  std::vector<std::string> out;
  const std::string marker = "resim-lint:";
  std::size_t from = 0;
  while (true) {
    std::size_t at = comment.find(marker, from);
    if (at == std::string::npos) break;
    at = comment.find("allow(", at + marker.size());
    if (at == std::string::npos) break;
    const std::size_t close = comment.find(')', at);
    if (close == std::string::npos) break;
    const std::string list = comment.substr(at + 6, close - at - 6);
    std::size_t start = 0;
    while (start <= list.size()) {
      const std::size_t comma = list.find(',', start);
      const std::string item =
          trim(list.substr(start, comma == std::string::npos ? std::string::npos
                                                             : comma - start));
      if (!item.empty()) out.push_back(item);
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    from = close + 1;
  }
  return out;
}

/// Every allow()ed rule name found in `toks`' comments, flagged when it
/// names no rule in `known`.
std::vector<Suppression> collect_suppressions(const std::vector<Token>& toks,
                                              const std::set<std::string>& known) {
  std::vector<Suppression> sups;
  for (const Token& t : toks) {
    if (t.kind != TokKind::kComment) continue;
    for (const std::string& rule : parse_allows(t.text)) {
      sups.push_back({t.line, rule, false, known.count(rule) == 0});
    }
  }
  return sups;
}

/// Filters `raw` findings for one file through its suppressions and
/// appends the engine's meta-findings (unknown-rule, unused-suppression).
std::vector<Finding> apply_suppressions(const std::string& relpath,
                                        std::vector<Suppression> sups,
                                        std::vector<Finding> raw) {
  std::vector<Finding> out;
  for (Finding& f : raw) {
    bool suppressed = false;
    for (Suppression& s : sups) {
      if (s.line == f.line && s.rule == f.rule) {
        s.used = true;
        suppressed = true;
      }
    }
    if (!suppressed) out.push_back(std::move(f));
  }

  // A meta-finding can itself be allow()ed on its line during refactors;
  // the allow(unused-suppression) / allow(unknown-rule) marker is never
  // itself reported as unused.
  const auto meta_allowed = [&](int line, const char* meta_id) {
    bool allowed = false;
    for (Suppression& s : sups) {
      if (s.line == line && s.rule == meta_id) {
        s.used = true;
        allowed = true;
      }
    }
    return allowed;
  };

  for (Suppression& s : sups) {
    if (s.unknown) {
      if (!meta_allowed(s.line, kUnknownRule)) {
        out.push_back({relpath, s.line, kUnknownRule,
                       "allow() names unknown rule '" + s.rule + "'"});
      }
    } else if (!s.used && s.rule != kUnusedSuppression &&
               s.rule != kUnknownRule) {
      if (!meta_allowed(s.line, kUnusedSuppression)) {
        out.push_back({relpath, s.line, kUnusedSuppression,
                       "allow(" + s.rule + ") suppresses nothing on this line"});
      }
    }
  }
  return out;
}

void sort_findings(std::vector<Finding>& fs) {
  std::sort(fs.begin(), fs.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
}

std::string baseline_key(const Finding& f) {
  return f.file + ": " + f.rule + ": " + f.message;
}

}  // namespace

std::string format_finding(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": " + f.rule + ": " +
         f.message;
}

Baseline Baseline::parse(const std::string& text, const std::string& origin) {
  Baseline b;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    // Shape check: "file: rule: message" needs at least two ": " breaks.
    const std::size_t c1 = t.find(": ");
    const std::size_t c2 = c1 == std::string::npos ? c1 : t.find(": ", c1 + 2);
    if (c2 == std::string::npos) {
      throw std::runtime_error(origin + ":" + std::to_string(lineno) +
                               ": malformed baseline entry (want "
                               "'file: rule-id: message'): " + t);
    }
    ++b.entries_[t];
  }
  return b;
}

bool Baseline::absorb(const Finding& f) {
  auto it = entries_.find(baseline_key(f));
  if (it == entries_.end() || it->second == 0) return false;
  --it->second;
  return true;
}

std::vector<std::string> Baseline::stale() const {
  std::vector<std::string> out;
  for (const auto& [key, count] : entries_) {
    for (int i = 0; i < count; ++i) out.push_back(key);
  }
  return out;
}

LintEngine::LintEngine()
    : rules_(default_rules()), tree_rules_(default_tree_rules()) {}

void LintEngine::add_rule(std::unique_ptr<Rule> rule) {
  rules_.push_back(std::move(rule));
}

void LintEngine::add_tree_rule(std::unique_ptr<TreeRule> rule) {
  tree_rules_.push_back(std::move(rule));
}

namespace {

std::set<std::string> known_rule_ids(const LintEngine& e) {
  std::set<std::string> known{kUnusedSuppression, kUnknownRule};
  for (const auto& r : e.rules()) known.insert(r->id());
  for (const auto& r : e.tree_rules()) known.insert(r->id());
  return known;
}

}  // namespace

std::vector<Finding> LintEngine::run_file(const std::string& relpath,
                                          const std::string& source) const {
  const std::vector<Token> toks = tokenize(source);
  std::vector<Suppression> sups =
      collect_suppressions(toks, known_rule_ids(*this));

  std::vector<Finding> raw;
  for (const auto& r : rules_) {
    if (r->applies_to(relpath)) r->check(relpath, toks, raw);
  }

  std::vector<Finding> out =
      apply_suppressions(relpath, std::move(sups), std::move(raw));
  sort_findings(out);
  return out;
}

std::vector<Finding> LintEngine::run_sources(
    std::vector<SourceFile> sources) const {
  const RepoIndex index = RepoIndex::build(std::move(sources));
  const std::set<std::string> known = known_rule_ids(*this);

  // Raw findings grouped per file: per-file rules on each file's token
  // stream (tokenized once, inside the index), then the tree rules over
  // the whole index. Grouping first lets a file's allow() comments
  // suppress cross-TU findings anchored in it, exactly like local ones.
  std::map<std::string, std::vector<Finding>> raw_by_file;
  for (const FileInfo& f : index.files()) {
    auto& bucket = raw_by_file[f.path];  // materialize even when clean
    for (const auto& r : rules_) {
      if (r->applies_to(f.path)) r->check(f.path, f.tokens, bucket);
    }
  }
  std::vector<Finding> tree_raw;
  for (const auto& r : tree_rules_) r->check(index, tree_raw);
  for (Finding& f : tree_raw) raw_by_file[f.file].push_back(std::move(f));

  std::vector<Finding> out;
  for (auto& [path, raw] : raw_by_file) {
    const FileInfo* info = index.file(path);
    std::vector<Suppression> sups =
        info ? collect_suppressions(info->tokens, known)
             : std::vector<Suppression>{};
    std::vector<Finding> fs =
        apply_suppressions(path, std::move(sups), std::move(raw));
    out.insert(out.end(), std::make_move_iterator(fs.begin()),
               std::make_move_iterator(fs.end()));
  }
  sort_findings(out);
  return out;
}

std::vector<Finding> LintEngine::run_tree(
    const std::string& root, const std::vector<std::string>& dirs) const {
  return run_sources(read_source_tree(root, dirs));
}

}  // namespace resim::analysis
