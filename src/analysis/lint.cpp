#include "analysis/lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace resim::analysis {

namespace {

/// Rule id reserved for the engine's own check on dead allow() comments.
constexpr const char* kUnusedSuppression = "unused-suppression";

/// One rule name parsed out of an allow-comment.
struct Suppression {
  int line = 0;
  std::string rule;
  bool used = false;
  bool unknown = false;  ///< names no registered rule (typo guard)
};

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Extracts allow()ed rule names from a comment token. The marker — the
/// linter's name, a colon, then an allow() list — can sit anywhere in
/// the comment, so a justification may precede it on the same line.
std::vector<std::string> parse_allows(const std::string& comment) {
  std::vector<std::string> out;
  const std::string marker = "resim-lint:";
  std::size_t from = 0;
  while (true) {
    std::size_t at = comment.find(marker, from);
    if (at == std::string::npos) break;
    at = comment.find("allow(", at + marker.size());
    if (at == std::string::npos) break;
    const std::size_t close = comment.find(')', at);
    if (close == std::string::npos) break;
    const std::string list = comment.substr(at + 6, close - at - 6);
    std::size_t start = 0;
    while (start <= list.size()) {
      const std::size_t comma = list.find(',', start);
      const std::string item =
          trim(list.substr(start, comma == std::string::npos ? std::string::npos
                                                             : comma - start));
      if (!item.empty()) out.push_back(item);
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    from = close + 1;
  }
  return out;
}

std::string read_file(const std::filesystem::path& p) {
  std::ifstream f(p, std::ios::binary);
  if (!f) throw std::runtime_error("resim_lint: cannot open " + p.string());
  std::ostringstream os;
  os << f.rdbuf();
  if (f.bad()) throw std::runtime_error("resim_lint: read failed for " + p.string());
  return os.str();
}

bool lintable_extension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h" ||
         ext == ".hh";
}

std::string baseline_key(const Finding& f) {
  return f.file + ": " + f.rule + ": " + f.message;
}

}  // namespace

std::string format_finding(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": " + f.rule + ": " +
         f.message;
}

Baseline Baseline::parse(const std::string& text, const std::string& origin) {
  Baseline b;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    // Shape check: "file: rule: message" needs at least two ": " breaks.
    const std::size_t c1 = t.find(": ");
    const std::size_t c2 = c1 == std::string::npos ? c1 : t.find(": ", c1 + 2);
    if (c2 == std::string::npos) {
      throw std::runtime_error(origin + ":" + std::to_string(lineno) +
                               ": malformed baseline entry (want "
                               "'file: rule-id: message'): " + t);
    }
    ++b.entries_[t];
  }
  return b;
}

bool Baseline::absorb(const Finding& f) {
  auto it = entries_.find(baseline_key(f));
  if (it == entries_.end() || it->second == 0) return false;
  --it->second;
  return true;
}

std::vector<std::string> Baseline::stale() const {
  std::vector<std::string> out;
  for (const auto& [key, count] : entries_) {
    for (int i = 0; i < count; ++i) out.push_back(key);
  }
  return out;
}

LintEngine::LintEngine() : rules_(default_rules()) {}

void LintEngine::add_rule(std::unique_ptr<Rule> rule) {
  rules_.push_back(std::move(rule));
}

std::vector<Finding> LintEngine::run_file(const std::string& relpath,
                                          const std::string& source) const {
  const std::vector<Token> toks = tokenize(source);

  std::set<std::string> known;
  known.insert(kUnusedSuppression);
  for (const auto& r : rules_) known.insert(r->id());

  std::vector<Suppression> sups;
  for (const Token& t : toks) {
    if (t.kind != TokKind::kComment) continue;
    for (const std::string& rule : parse_allows(t.text)) {
      sups.push_back({t.line, rule, false, known.count(rule) == 0});
    }
  }

  std::vector<Finding> raw;
  for (const auto& r : rules_) {
    if (r->applies_to(relpath)) r->check(relpath, toks, raw);
  }

  std::vector<Finding> out;
  for (Finding& f : raw) {
    bool suppressed = false;
    for (Suppression& s : sups) {
      if (s.line == f.line && s.rule == f.rule) {
        s.used = true;
        suppressed = true;
      }
    }
    if (!suppressed) out.push_back(std::move(f));
  }

  for (Suppression& s : sups) {
    if (s.unknown) {
      out.push_back({relpath, s.line, kUnusedSuppression,
                     "allow() names unknown rule '" + s.rule + "'"});
    } else if (!s.used && s.rule != kUnusedSuppression) {
      Finding f{relpath, s.line, kUnusedSuppression,
                "allow(" + s.rule + ") suppresses nothing on this line"};
      // A dead suppression can itself be allow()ed during refactors.
      bool keep = true;
      for (Suppression& s2 : sups) {
        if (s2.line == s.line && s2.rule == kUnusedSuppression) {
          s2.used = true;
          keep = false;
        }
      }
      if (keep) out.push_back(std::move(f));
    }
  }

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  return out;
}

std::vector<Finding> LintEngine::run_tree(
    const std::string& root, const std::vector<std::string>& dirs) const {
  namespace fs = std::filesystem;
  std::vector<std::pair<std::string, fs::path>> files;  // relpath, abspath
  for (const std::string& dir : dirs) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) {
      throw std::runtime_error("resim_lint: no such directory: " +
                               base.string());
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !lintable_extension(entry.path())) {
        continue;
      }
      const std::string rel =
          (fs::path(dir) / fs::relative(entry.path(), base)).generic_string();
      files.emplace_back(rel, entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> out;
  for (const auto& [rel, abs] : files) {
    std::vector<Finding> fs_file = run_file(rel, read_file(abs));
    out.insert(out.end(), std::make_move_iterator(fs_file.begin()),
               std::make_move_iterator(fs_file.end()));
  }
  return out;
}

}  // namespace resim::analysis
