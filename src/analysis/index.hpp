// Cross-TU repository index for resim_lint: the data the tree rules in
// src/analysis/tree_rules.cpp consume.
//
// Built from the same token streams the per-file rules see, it records
// per file:
//   - every #include directive, with quoted includes resolved to a
//     repo-relative path when the target is part of the indexed tree;
//   - struct/class definitions with their data members (a token-shape
//     heuristic: no C++ front end, but exact about strings, comments,
//     splices and preprocessor extents via Token::starts_line);
//   - enum definitions with their enumerators;
//   - the token extents of preprocessor directives, so rules that must
//     look inside macro definitions (registry-drift) can.
//
// On top of the per-file facts it offers the include graph: shortest
// include chains (BFS), include-cycle enumeration, the subsystem-level
// DAG as Graphviz dot, and the path→subsystem mapping the layering rule
// and the CLI's --graph/--why flags share.
#ifndef RESIM_ANALYSIS_INDEX_H
#define RESIM_ANALYSIS_INDEX_H

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis/lexer.hpp"

namespace resim::analysis {

/// One in-memory source file: repo-relative path ('/' separators) plus
/// its full text. The unit of input for RepoIndex and LintEngine.
struct SourceFile {
  std::string path;
  std::string text;
};

/// Reads every lintable C++ file (.cpp/.cc/.hpp/.h/.hh) under
/// `root/<dir>` for each of `dirs`, sorted by repo-relative path.
/// Throws std::runtime_error when a directory or file cannot be read.
std::vector<SourceFile> read_source_tree(const std::string& root,
                                         const std::vector<std::string>& dirs);

/// One #include directive.
struct IncludeEdge {
  std::string target;    ///< as written between the delimiters
  std::string resolved;  ///< repo-relative path of the target when it is
                         ///< part of the indexed tree; empty for external
                         ///< (system or unindexed) headers
  int line = 0;
  bool system = false;  ///< <...> form
};

/// One data member of a record. Member functions, static members, and
/// nested type declarations are deliberately excluded.
struct FieldDecl {
  std::string type;       ///< type tokens joined with single spaces
  std::string type_tail;  ///< last identifier of the type ("CacheConfig"
                          ///< for `cache::CacheConfig`) — the key the
                          ///< registry-drift rule recurses on
  std::string name;
  int line = 0;
  bool is_sync = false;  ///< type names a std mutex/condition_variable
};

/// One struct/class/union definition (not a forward declaration).
struct RecordDecl {
  std::string name;
  int line = 0;
  std::vector<FieldDecl> fields;

  bool has_sync_member() const {
    for (const FieldDecl& f : fields) {
      if (f.is_sync) return true;
    }
    return false;
  }
};

/// One enum definition with its enumerators in declaration order.
struct EnumDecl {
  std::string name;
  int line = 0;
  bool scoped = false;           ///< enum class / enum struct
  bool has_explicit_values = false;  ///< any `= value` enumerator
  std::vector<std::string> enumerators;
};

/// Token extent [begin, end) of one preprocessor directive within
/// FileInfo::tokens; `begin` indexes the introducing `#`.
struct DirectiveRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

struct FileInfo {
  std::string path;
  std::string subsystem;
  std::vector<Token> tokens;  ///< full stream, comments included
  std::vector<IncludeEdge> includes;
  std::vector<RecordDecl> records;
  std::vector<EnumDecl> enums;
  std::vector<DirectiveRange> directives;
};

class RepoIndex {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Scans and cross-links the given sources. Never throws on malformed
  /// C++ — like the lexer, the index degrades to recording less.
  static RepoIndex build(std::vector<SourceFile> sources);

  const std::vector<FileInfo>& files() const { return files_; }
  std::size_t index_of(const std::string& path) const;
  const FileInfo* file(const std::string& path) const;

  /// "src/core/engine.cpp" -> "core"; "tools/resim_lint.cpp" -> "tools";
  /// top-level dirs (tools/bench/examples/tests) are their own subsystem.
  static std::string subsystem_of(const std::string& path);

  /// Resolved include edges of file `i` as (target file index, line of
  /// the #include). External includes do not appear here.
  const std::vector<std::pair<std::size_t, int>>& edges_of(std::size_t i) const {
    return adj_[i];
  }

  /// BFS over resolved includes from `from`: parents[i] is the
  /// predecessor file index on a shortest chain, npos when unreached,
  /// `from` for itself.
  std::vector<std::size_t> bfs_parents(std::size_t from) const;

  /// Shortest include chain from file `from` to file `to`, inclusive of
  /// both endpoints; empty when there is none (or either path is
  /// unknown). A file trivially reaches itself with a chain of one.
  std::vector<std::string> include_chain(const std::string& from,
                                         const std::string& to) const;

  /// Shortest include chain from any file of subsystem `from` to any
  /// file of subsystem `to`; empty when no file of `from` reaches `to`.
  std::vector<std::string> subsystem_chain(const std::string& from,
                                           const std::string& to) const;

  /// Every distinct include cycle, each reported once as a closed path
  /// f1 -> f2 -> ... -> f1 starting at its lexicographically smallest
  /// file, sorted; a clean tree yields an empty vector.
  std::vector<std::vector<std::string>> include_cycles() const;

  /// The subsystem-level include DAG as Graphviz dot (deterministic
  /// ordering; self-edges omitted) — the source for docs/ARCHITECTURE.md
  /// and the CLI's --graph dot.
  std::string subsystem_dot() const;

  /// First definition of record / enum `name` across the tree, with the
  /// file that holds it; {nullptr, nullptr} when absent.
  std::pair<const FileInfo*, const RecordDecl*> find_record(
      const std::string& name) const;
  std::pair<const FileInfo*, const EnumDecl*> find_enum(
      const std::string& name) const;

 private:
  std::vector<FileInfo> files_;
  std::map<std::string, std::size_t> by_path_;
  std::vector<std::vector<std::pair<std::size_t, int>>> adj_;
};

}  // namespace resim::analysis

#endif  // RESIM_ANALYSIS_INDEX_H
