// resim_lint engine: repo-invariant rules over the token stream of each
// translation unit, with per-line suppressions and a checked-in baseline
// for grandfathered findings.
//
//   Finding      file:line: rule-id: message
//   Rule         scope (applies_to) + token-level check over one TU
//   TreeRule     cross-TU check over the RepoIndex (include graph +
//                declaration scan; src/analysis/index.hpp) — layering,
//                registry-drift, enum-string-drift, lock-discipline
//   LintEngine   tokenize once per file, run every applicable rule,
//                honor per-line allow-comment suppressions on the
//                finding's line (syntax in docs/LINT.md), and flag
//                allow() comments that suppress nothing (rule id
//                `unused-suppression`) or name no known rule
//                (`unknown-rule`) so dead suppressions cannot accumulate
//   Baseline     grandfathered findings (file + rule + message, line
//                numbers deliberately ignored so unrelated edits don't
//                churn the file); stale entries are reported
//
// All multi-file entry points return findings sorted by (file, line,
// rule, message), so CLI output and --write-baseline never churn on
// directory-iteration order.
//
// The rule catalog and the workflow for suppressing or baselining a
// finding are documented in docs/LINT.md.
#ifndef RESIM_ANALYSIS_LINT_H
#define RESIM_ANALYSIS_LINT_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/index.hpp"
#include "analysis/lexer.hpp"

namespace resim::analysis {

struct Finding {
  std::string file;  ///< repo-relative path with '/' separators
  int line = 0;      ///< 1-based; 0 for whole-file findings
  std::string rule;
  std::string message;
};

/// "file:line: rule-id: message" — the one output format, shared by the
/// CLI, the ctest entry, and baseline generation.
std::string format_finding(const Finding& f);

class Rule {
 public:
  virtual ~Rule() = default;
  virtual std::string id() const = 0;
  virtual std::string description() const = 0;
  /// Scope filter on the repo-relative path ("src/core/engine.cpp").
  virtual bool applies_to(const std::string& relpath) const = 0;
  virtual void check(const std::string& relpath, const std::vector<Token>& toks,
                     std::vector<Finding>& out) const = 0;
};

/// The five per-file repo-invariant rules shipped with the linter
/// (docs/LINT.md).
std::vector<std::unique_ptr<Rule>> default_rules();

/// A cross-TU rule: sees the whole repository index at once. Findings
/// anchor to a concrete file:line (the offending #include, field, or
/// call) so per-line suppressions and the baseline work unchanged.
class TreeRule {
 public:
  virtual ~TreeRule() = default;
  virtual std::string id() const = 0;
  virtual std::string description() const = 0;
  virtual void check(const RepoIndex& index,
                     std::vector<Finding>& out) const = 0;
};

/// The four cross-TU rules: layering, registry-drift, enum-string-drift,
/// lock-discipline (src/analysis/tree_rules.cpp; docs/LINT.md).
std::vector<std::unique_ptr<TreeRule>> default_tree_rules();

/// Grandfathered findings loaded from tools/lint_baseline.txt. Entries
/// are `file: rule-id: message` (no line number); '#' comments and blank
/// lines are ignored. Duplicate entries grandfather that many findings.
class Baseline {
 public:
  Baseline() = default;
  /// Parses baseline text; throws std::runtime_error on a malformed line.
  static Baseline parse(const std::string& text, const std::string& origin);

  /// Consumes the entry matching `f` if present; returns whether it did.
  bool absorb(const Finding& f);
  /// Entries never matched by any finding (stale: the violation is gone).
  std::vector<std::string> stale() const;
  std::size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, int> entries_;  ///< "file: rule: message" -> count
};

class LintEngine {
 public:
  /// An engine pre-loaded with default_rules() and default_tree_rules().
  LintEngine();

  void add_rule(std::unique_ptr<Rule> rule);
  void add_tree_rule(std::unique_ptr<TreeRule> rule);
  const std::vector<std::unique_ptr<Rule>>& rules() const { return rules_; }
  const std::vector<std::unique_ptr<TreeRule>>& tree_rules() const {
    return tree_rules_;
  }

  /// Lints one in-memory translation unit: tokenize, run every per-file
  /// rule whose scope matches `relpath`, apply suppressions, report
  /// unused ones. Tree rules do not run (they need the whole tree).
  std::vector<Finding> run_file(const std::string& relpath,
                                const std::string& source) const;

  /// Lints a set of in-memory sources: per-file rules on each file plus
  /// every tree rule over the RepoIndex built from them. Suppressions in
  /// a file apply to tree-rule findings anchored there too. Findings are
  /// sorted by (file, line, rule, message).
  std::vector<Finding> run_sources(std::vector<SourceFile> sources) const;

  /// Lints every C++ source file (.cpp/.cc/.hpp/.h/.hh) under
  /// `root/<dir>` for each of `dirs` via run_sources().
  /// Throws std::runtime_error when a directory or file cannot be read.
  std::vector<Finding> run_tree(const std::string& root,
                                const std::vector<std::string>& dirs) const;

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
  std::vector<std::unique_ptr<TreeRule>> tree_rules_;
};

}  // namespace resim::analysis

#endif  // RESIM_ANALYSIS_LINT_H
