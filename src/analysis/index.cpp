#include "analysis/index.hpp"

#include <algorithm>
#include <deque>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace resim::analysis {

namespace {

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}
bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdentifier && t.text == text;
}

bool in_set(const std::string& s, std::initializer_list<const char*> set) {
  for (const char* e : set) {
    if (s == e) return true;
  }
  return false;
}

/// std synchronization primitives the lock-discipline rule keys on.
bool is_sync_type_name(const std::string& s) {
  return in_set(s, {"mutex", "timed_mutex", "recursive_mutex",
                    "recursive_timed_mutex", "shared_mutex",
                    "shared_timed_mutex", "condition_variable",
                    "condition_variable_any"});
}

std::string read_file(const std::filesystem::path& p) {
  std::ifstream f(p, std::ios::binary);
  if (!f) throw std::runtime_error("resim_lint: cannot open " + p.string());
  std::ostringstream os;
  os << f.rdbuf();
  if (f.bad()) {
    throw std::runtime_error("resim_lint: read failed for " + p.string());
  }
  return os.str();
}

bool lintable_extension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h" ||
         ext == ".hh";
}

/// Joins "dir/sub" + "../x" style paths without touching the filesystem.
std::string normalize_path(const std::string& p) {
  std::vector<std::string> parts;
  std::istringstream is(p);
  std::string seg;
  while (std::getline(is, seg, '/')) {
    if (seg.empty() || seg == ".") continue;
    if (seg == ".." && !parts.empty() && parts.back() != "..") {
      parts.pop_back();
      continue;
    }
    parts.push_back(seg);
  }
  std::string out;
  for (const std::string& s : parts) {
    if (!out.empty()) out += '/';
    out += s;
  }
  return out;
}

std::string dirname_of(const std::string& p) {
  const std::size_t slash = p.rfind('/');
  return slash == std::string::npos ? std::string() : p.substr(0, slash);
}

/// Scans one file's token stream into FileInfo facts: directive extents,
/// #include edges (unresolved at this stage), record definitions with
/// data members, and enum definitions with enumerators.
void scan_file(FileInfo& info) {
  const std::vector<Token>& toks = info.tokens;
  const std::size_t n = toks.size();

  // --- Pass 1: preprocessor directive extents + #include edges. A
  // directive runs from a line-initial `#` to the next line-initial
  // token; spliced continuation lines never start a line (lexer.hpp), so
  // multi-line #define bodies stay inside one extent.
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_punct(toks[i], "#") || !toks[i].starts_line) continue;
    std::size_t end = i + 1;
    while (end < n && !toks[end].starts_line) ++end;
    info.directives.push_back({i, end});
    if (i + 2 < end && is_ident(toks[i + 1], "include")) {
      const Token& t = toks[i + 2];
      if (t.kind == TokKind::kString && t.text.size() >= 2) {
        IncludeEdge e;
        e.target = t.text.substr(1, t.text.size() - 2);
        e.line = toks[i].line;
        e.system = false;
        info.includes.push_back(std::move(e));
      } else if (is_punct(t, "<")) {
        IncludeEdge e;
        for (std::size_t j = i + 3; j < end && !is_punct(toks[j], ">"); ++j) {
          e.target += toks[j].text;
        }
        e.line = toks[i].line;
        e.system = true;
        info.includes.push_back(std::move(e));
      }
    }
    i = end - 1;
  }

  // --- Pass 2: declarations, over the code view (comments and directive
  // extents excluded, so tokens inside macro bodies are never mistaken
  // for real declarations).
  std::vector<std::size_t> code;
  code.reserve(n);
  {
    std::size_t d = 0;  // directives are sorted by construction
    for (std::size_t i = 0; i < n; ++i) {
      while (d < info.directives.size() && info.directives[d].end <= i) ++d;
      const bool in_directive = d < info.directives.size() &&
                                i >= info.directives[d].begin &&
                                i < info.directives[d].end;
      if (in_directive || toks[i].kind == TokKind::kComment) continue;
      code.push_back(i);
    }
  }
  const auto tok = [&](std::size_t k) -> const Token& { return toks[code[k]]; };
  const std::size_t m = code.size();

  struct OpenRecord {
    std::size_t rec;  // index into info.records
    int body_depth;
  };
  std::vector<OpenRecord> stack;
  int depth = 0;
  std::vector<const Token*> stmt;

  const auto at_member_level = [&]() {
    return !stack.empty() && depth == stack.back().body_depth;
  };

  // Statement-shape field heuristic: the identifier immediately before
  // the first `=` / `:` / terminator is the member name, provided no
  // parenthesis occurred first (which marks functions and factories).
  const auto try_field = [&](int line_hint) {
    if (!at_member_level() || stmt.size() < 2) return;
    std::size_t stop = stmt.size();
    for (std::size_t i = 0; i < stmt.size(); ++i) {
      if (stmt[i]->kind == TokKind::kPunct &&
          (stmt[i]->text == "=" || stmt[i]->text == ":")) {
        stop = i;
        break;
      }
    }
    if (stop < 2) return;
    for (std::size_t i = 0; i < stop; ++i) {
      if (stmt[i]->kind == TokKind::kPunct &&
          (stmt[i]->text == "(" || stmt[i]->text == ")")) {
        return;
      }
    }
    if (stmt[0]->kind == TokKind::kIdentifier &&
        in_set(stmt[0]->text,
               {"using", "typedef", "friend", "static", "template", "operator",
                "namespace", "extern", "enum", "struct", "class", "union",
                "public", "private", "protected", "return"})) {
      return;
    }
    const Token* last = stmt[stop - 1];
    if (last->kind != TokKind::kIdentifier ||
        in_set(last->text, {"const", "override", "final", "noexcept",
                            "default", "delete"})) {
      return;
    }
    FieldDecl f;
    f.name = last->text;
    f.line = last->line > 0 ? last->line : line_hint;
    for (std::size_t i = 0; i + 1 < stop; ++i) {
      const Token* t = stmt[i];
      if (t->kind == TokKind::kIdentifier) f.type_tail = t->text;
      if (t->kind == TokKind::kIdentifier && is_sync_type_name(t->text)) {
        f.is_sync = true;
      }
      if (!f.type.empty() && t->text != "::" &&
          !(f.type.size() >= 2 &&
            f.type.compare(f.type.size() - 2, 2, "::") == 0)) {
        f.type += ' ';
      }
      f.type += t->text;
    }
    if (f.type.empty()) return;
    info.records[stack.back().rec].fields.push_back(std::move(f));
  };

  for (std::size_t k = 0; k < m; ++k) {
    const Token& t = tok(k);

    // Enum definition (handles `enum`, `enum class`, `enum struct`).
    if (is_ident(t, "enum")) {
      std::size_t j = k + 1;
      EnumDecl e;
      e.line = t.line;
      if (j < m && (is_ident(tok(j), "class") || is_ident(tok(j), "struct"))) {
        e.scoped = true;
        ++j;
      }
      if (j < m && tok(j).kind == TokKind::kIdentifier) {
        e.name = tok(j).text;
        ++j;
      }
      if (j < m && is_punct(tok(j), ":")) {
        ++j;
        while (j < m && !is_punct(tok(j), "{") && !is_punct(tok(j), ";")) ++j;
      }
      if (j < m && is_punct(tok(j), "{")) {
        ++j;
        int braces = 1, parens = 0;
        bool expecting = true;
        for (; j < m; ++j) {
          const Token& u = tok(j);
          if (is_punct(u, "{")) ++braces;
          if (is_punct(u, "}") && --braces == 0) break;
          if (is_punct(u, "(")) ++parens;
          if (is_punct(u, ")")) --parens;
          if (braces != 1 || parens != 0) continue;
          if (is_punct(u, ",")) {
            expecting = true;
          } else if (is_punct(u, "=")) {
            e.has_explicit_values = true;
          } else if (expecting && u.kind == TokKind::kIdentifier) {
            e.enumerators.push_back(u.text);
            expecting = false;
          }
        }
        info.enums.push_back(std::move(e));
        k = j;  // resume after the closing brace
        stmt.clear();
        continue;
      }
      // Forward declaration / elaborated use: fall through untouched so
      // `enum Foo x;` still terminates normally at its `;`.
      k = j > k ? j - 1 : k;
      continue;
    }

    // Record definition.
    if (is_ident(t, "struct") || is_ident(t, "class") ||
        is_ident(t, "union")) {
      std::size_t j = k + 1;
      // Attributes: `[[nodiscard]]` etc.
      while (j + 1 < m && is_punct(tok(j), "[") && is_punct(tok(j + 1), "[")) {
        int sq = 0;
        for (; j < m; ++j) {
          if (is_punct(tok(j), "[")) ++sq;
          if (is_punct(tok(j), "]") && --sq == 0) {
            ++j;
            break;
          }
        }
      }
      std::string name;
      if (j < m && tok(j).kind == TokKind::kIdentifier &&
          !in_set(tok(j).text, {"final"})) {
        name = tok(j).text;
        ++j;
      }
      if (j < m && is_punct(tok(j), "<")) {  // specialization arguments
        int angle = 0;
        for (; j < m; ++j) {
          if (is_punct(tok(j), "<")) ++angle;
          if (is_punct(tok(j), ">") && --angle == 0) {
            ++j;
            break;
          }
        }
      }
      if (j < m && is_ident(tok(j), "final")) ++j;
      // Definition iff `{` comes before any of `; ( =` (base clauses may
      // precede it). Anything else is a forward declaration or an
      // elaborated type in a member/variable declaration.
      std::size_t body = RepoIndex::npos;
      for (std::size_t s = j; s < m; ++s) {
        if (is_punct(tok(s), "{")) {
          body = s;
          break;
        }
        if (is_punct(tok(s), ";") || is_punct(tok(s), "(") ||
            is_punct(tok(s), "=")) {
          break;
        }
      }
      if (body != RepoIndex::npos && !name.empty()) {
        info.records.push_back({name, t.line, {}});
        ++depth;
        stack.push_back({info.records.size() - 1, depth});
        stmt.clear();
        k = body;
        continue;
      }
      if (body != RepoIndex::npos) {  // anonymous: track depth only
        ++depth;
        stmt.clear();
        k = body;
        continue;
      }
      stmt.push_back(&t);
      continue;
    }

    if (is_punct(t, "{")) {
      try_field(t.line);  // brace-initialized member: `Rng rng{1};`
      ++depth;
      stmt.clear();
      continue;
    }
    if (is_punct(t, "}")) {
      --depth;
      while (!stack.empty() && depth < stack.back().body_depth) {
        stack.pop_back();
      }
      stmt.clear();
      continue;
    }
    if (is_punct(t, ";")) {
      try_field(t.line);
      stmt.clear();
      continue;
    }
    if (is_punct(t, ":") && at_member_level() && stmt.size() == 1 &&
        stmt[0]->kind == TokKind::kIdentifier &&
        in_set(stmt[0]->text, {"public", "private", "protected"})) {
      stmt.clear();
      continue;
    }
    if (at_member_level()) stmt.push_back(&t);
  }
}

}  // namespace

std::vector<SourceFile> read_source_tree(
    const std::string& root, const std::vector<std::string>& dirs) {
  namespace fs = std::filesystem;
  std::vector<SourceFile> out;
  for (const std::string& dir : dirs) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) {
      throw std::runtime_error("resim_lint: no such directory: " +
                               base.string());
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !lintable_extension(entry.path())) {
        continue;
      }
      const std::string rel =
          (fs::path(dir) / fs::relative(entry.path(), base)).generic_string();
      out.push_back({rel, read_file(entry.path())});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return out;
}

std::string RepoIndex::subsystem_of(const std::string& path) {
  const std::size_t s1 = path.find('/');
  if (s1 == std::string::npos) return path;
  const std::string head = path.substr(0, s1);
  if (head != "src") return head;
  const std::size_t s2 = path.find('/', s1 + 1);
  if (s2 == std::string::npos) return head;  // file directly under src/
  return path.substr(s1 + 1, s2 - s1 - 1);
}

RepoIndex RepoIndex::build(std::vector<SourceFile> sources) {
  RepoIndex idx;
  idx.files_.reserve(sources.size());
  for (SourceFile& s : sources) {
    FileInfo info;
    info.path = std::move(s.path);
    info.subsystem = subsystem_of(info.path);
    info.tokens = tokenize(s.text);
    scan_file(info);
    idx.by_path_[info.path] = idx.files_.size();
    idx.files_.push_back(std::move(info));
  }

  idx.adj_.resize(idx.files_.size());
  for (std::size_t i = 0; i < idx.files_.size(); ++i) {
    FileInfo& f = idx.files_[i];
    const std::string dir = dirname_of(f.path);
    for (IncludeEdge& e : f.includes) {
      if (e.system) continue;
      const std::string candidates[] = {
          dir.empty() ? e.target : normalize_path(dir + "/" + e.target),
          "src/" + e.target, normalize_path(e.target)};
      for (const std::string& c : candidates) {
        const auto it = idx.by_path_.find(c);
        if (it != idx.by_path_.end()) {
          e.resolved = c;
          idx.adj_[i].emplace_back(it->second, e.line);
          break;
        }
      }
    }
  }
  return idx;
}

std::size_t RepoIndex::index_of(const std::string& path) const {
  const auto it = by_path_.find(path);
  return it == by_path_.end() ? npos : it->second;
}

const FileInfo* RepoIndex::file(const std::string& path) const {
  const std::size_t i = index_of(path);
  return i == npos ? nullptr : &files_[i];
}

std::vector<std::size_t> RepoIndex::bfs_parents(std::size_t from) const {
  std::vector<std::size_t> parent(files_.size(), npos);
  if (from >= files_.size()) return parent;
  parent[from] = from;
  std::deque<std::size_t> q{from};
  while (!q.empty()) {
    const std::size_t u = q.front();
    q.pop_front();
    for (const auto& [v, line] : adj_[u]) {
      if (parent[v] != npos) continue;
      parent[v] = u;
      q.push_back(v);
    }
  }
  return parent;
}

std::vector<std::string> RepoIndex::include_chain(const std::string& from,
                                                  const std::string& to) const {
  const std::size_t a = index_of(from), b = index_of(to);
  if (a == npos || b == npos) return {};
  const std::vector<std::size_t> parent = bfs_parents(a);
  if (parent[b] == npos) return {};
  std::vector<std::string> chain;
  for (std::size_t v = b;; v = parent[v]) {
    chain.push_back(files_[v].path);
    if (v == a) break;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

std::vector<std::string> RepoIndex::subsystem_chain(
    const std::string& from, const std::string& to) const {
  // Multi-source BFS from every file of `from`, stopping at the nearest
  // file of `to`.
  std::vector<std::size_t> parent(files_.size(), npos);
  std::deque<std::size_t> q;
  for (std::size_t i = 0; i < files_.size(); ++i) {
    if (files_[i].subsystem == from) {
      parent[i] = i;
      if (files_[i].subsystem == to) return {files_[i].path};
      q.push_back(i);
    }
  }
  while (!q.empty()) {
    const std::size_t u = q.front();
    q.pop_front();
    for (const auto& [v, line] : adj_[u]) {
      if (parent[v] != npos) continue;
      parent[v] = u;
      if (files_[v].subsystem == to) {
        std::vector<std::string> chain;
        for (std::size_t w = v;; w = parent[w]) {
          chain.push_back(files_[w].path);
          if (parent[w] == w) break;
        }
        std::reverse(chain.begin(), chain.end());
        return chain;
      }
      q.push_back(v);
    }
  }
  return {};
}

std::vector<std::vector<std::string>> RepoIndex::include_cycles() const {
  // Iterative DFS; a back edge to a gray node closes a cycle. Each cycle
  // is canonicalized to start at its smallest path and reported once.
  enum Color { kWhite, kGray, kBlack };
  std::vector<Color> color(files_.size(), kWhite);
  std::set<std::vector<std::string>> out;

  struct Frame {
    std::size_t node;
    std::size_t edge = 0;
  };
  for (std::size_t start = 0; start < files_.size(); ++start) {
    if (color[start] != kWhite) continue;
    std::vector<Frame> stack{{start}};
    color[start] = kGray;
    while (!stack.empty()) {
      Frame& fr = stack.back();
      if (fr.edge >= adj_[fr.node].size()) {
        color[fr.node] = kBlack;
        stack.pop_back();
        continue;
      }
      const std::size_t v = adj_[fr.node][fr.edge++].first;
      if (color[v] == kWhite) {
        color[v] = kGray;
        stack.push_back({v});
      } else if (color[v] == kGray) {
        std::vector<std::string> cyc;
        std::size_t at = stack.size();
        while (at > 0 && stack[at - 1].node != v) --at;
        for (std::size_t s = at - 1; s < stack.size(); ++s) {
          cyc.push_back(files_[stack[s].node].path);
        }
        const auto smallest = std::min_element(cyc.begin(), cyc.end());
        std::rotate(cyc.begin(), smallest, cyc.end());
        cyc.push_back(cyc.front());  // close the loop for display
        out.insert(std::move(cyc));
      }
    }
  }
  return {out.begin(), out.end()};
}

std::string RepoIndex::subsystem_dot() const {
  std::set<std::string> nodes;
  std::set<std::pair<std::string, std::string>> edges;
  for (std::size_t i = 0; i < files_.size(); ++i) {
    nodes.insert(files_[i].subsystem);
    for (const auto& [v, line] : adj_[i]) {
      if (files_[v].subsystem != files_[i].subsystem) {
        edges.emplace(files_[i].subsystem, files_[v].subsystem);
      }
    }
  }
  std::ostringstream os;
  os << "digraph resim_includes {\n";
  os << "  rankdir=BT;\n";
  os << "  node [shape=box];\n";
  for (const std::string& n : nodes) os << "  \"" << n << "\";\n";
  for (const auto& [a, b] : edges) {
    os << "  \"" << a << "\" -> \"" << b << "\";\n";
  }
  os << "}\n";
  return os.str();
}

std::pair<const FileInfo*, const RecordDecl*> RepoIndex::find_record(
    const std::string& name) const {
  for (const FileInfo& f : files_) {
    for (const RecordDecl& r : f.records) {
      if (r.name == name) return {&f, &r};
    }
  }
  return {nullptr, nullptr};
}

std::pair<const FileInfo*, const EnumDecl*> RepoIndex::find_enum(
    const std::string& name) const {
  for (const FileInfo& f : files_) {
    for (const EnumDecl& e : f.enums) {
      if (e.name == name) return {&f, &e};
    }
  }
  return {nullptr, nullptr};
}

}  // namespace resim::analysis
