// Umbrella header: the ReSim public API.
//
// Typical use (see examples/quickstart.cpp):
//
//   auto wl   = resim::workload::make_workload("gzip");
//   resim::trace::TraceGenConfig gcfg;
//   gcfg.max_insts = 1'000'000;
//   auto trace = resim::trace::TraceGenerator(wl, gcfg).generate();
//
//   auto cfg = resim::core::CoreConfig::paper_4wide_perfect();
//   resim::trace::VectorTraceSource src(trace);
//   resim::core::ReSimEngine engine(cfg, src);
//   auto result = engine.run();
//
//   auto rpt = resim::core::fpga_throughput(
//       result, resim::fpga::xc5vlx50t().minor_clock_mhz,
//       engine.schedule().latency());
#ifndef RESIM_RESIM_H
#define RESIM_RESIM_H

#include "baseline/coupled.hpp"
#include "baseline/funcspeed.hpp"
#include "bpred/unit.hpp"
#include "cache/memsys.hpp"
#include "codegen/bpredgen.hpp"
#include "common/stats.hpp"
#include "config/config_file.hpp"
#include "config/names.hpp"
#include "config/param_registry.hpp"
#include "config/sweep_spec.hpp"
#include "core/cmp.hpp"
#include "core/engine.hpp"
#include "driver/batch_runner.hpp"
#include "driver/result_export.hpp"
#include "driver/sweep_grid.hpp"
#include "core/perf.hpp"
#include "core/schedule.hpp"
#include "fpga/area.hpp"
#include "fpga/device.hpp"
#include "fpga/fit.hpp"
#include "fpga/literature.hpp"
#include "common/lz.hpp"
#include "trace/container.hpp"
#include "trace/file_source.hpp"
#include "trace/mmap_source.hpp"
#include "trace/reader.hpp"
#include "trace/trace_stats.hpp"
#include "trace/tracegen.hpp"
#include "trace/window.hpp"
#include "trace/writer.hpp"
#include "workload/micro.hpp"
#include "workload/suite.hpp"

#endif  // RESIM_RESIM_H
