#include "cache/memsys.hpp"

namespace resim::cache {

MemorySystem::MemorySystem(const MemSysConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  if (!cfg_.perfect) {
    icache_ = std::make_unique<TagCache>("il1", cfg_.l1i);
    dcache_ = std::make_unique<TagCache>("dl1", cfg_.l1d);
    if (cfg_.with_l2) l2_ = std::make_unique<TagCache>("ul2", cfg_.l2);
  }
}

void MemorySystem::export_stats(StatsRegistry& reg) const {
  if (icache_) icache_->export_stats(reg);
  if (dcache_) dcache_->export_stats(reg);
  // No l2_: the paper-era report format carries only L1 statistics, and
  // byte-compatibility of reports is a contract (docs/STATS.md).
}

AccessResult MemorySystem::refill_through_l2(const AccessResult& l1_miss, Addr addr,
                                             AccessKind kind) {
  if (l2_ == nullptr) return l1_miss;
  // L1 miss: the fill is serviced by the L2 (hit) or by memory (miss);
  // the L1 probe itself costs one hit latency.
  const auto l2 = l2_->access(addr, kind);
  return {false, cfg_.l1d.hit_latency + l2.latency};
}

AccessResult MemorySystem::ifetch(Addr pc) {
  if (cfg_.perfect) return {true, 1};
  const auto r = icache_->access(pc, AccessKind::kFetch);
  return r.hit ? r : refill_through_l2(r, pc, AccessKind::kFetch);
}

AccessResult MemorySystem::dread(Addr addr) {
  if (cfg_.perfect) return {true, 1};
  const auto r = dcache_->access(addr, AccessKind::kRead);
  return r.hit ? r : refill_through_l2(r, addr, AccessKind::kRead);
}

AccessResult MemorySystem::dwrite(Addr addr) {
  if (cfg_.perfect) return {true, 1};
  const auto r = dcache_->access(addr, AccessKind::kWrite);
  return r.hit ? r : refill_through_l2(r, addr, AccessKind::kWrite);
}

}  // namespace resim::cache
