// Tag-only set-associative cache timing model.
//
// Paper §V (Table 4 discussion): "Since we do not store the actual data,
// we need to provide only the hit/miss indication and simulate the access
// latency" — exactly what this model does. No data array exists; an
// access returns {hit, latency} and trains the replacement state.
#ifndef RESIM_CACHE_CACHE_H
#define RESIM_CACHE_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/numeric.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace resim::cache {

enum class ReplPolicy : std::uint8_t { kLru, kFifo, kRandom };

enum class AccessKind : std::uint8_t { kRead, kWrite, kFetch };

struct CacheConfig {
  std::uint32_t size_bytes = 32 * 1024;  ///< paper: 32 KByte L1
  std::uint32_t assoc = 8;               ///< paper: associativity of 8 (FAST config)
  std::uint32_t block_bytes = 64;        ///< paper: block size 64 bytes
  std::uint32_t hit_latency = 1;         ///< cycles
  /// Miss service latency. The paper does not give one; FAST's system
  /// (whose L1 geometry Table 1 copies) backs the 32 KB L1s with an L2,
  /// so the default models an L2-hit-class 8-cycle fill (see DESIGN.md).
  std::uint32_t miss_latency = 8;
  ReplPolicy repl = ReplPolicy::kLru;
  bool write_allocate = true;

  void validate() const {
    require(is_pow2(size_bytes) && is_pow2(assoc) && is_pow2(block_bytes),
            "CacheConfig: size/assoc/block must be pow2");
    require(block_bytes >= 8, "CacheConfig: block >= 8");
    require(size_bytes >= assoc * block_bytes, "CacheConfig: too small for assoc");
    require(hit_latency >= 1, "CacheConfig: hit_latency >= 1");
    require(miss_latency >= hit_latency, "CacheConfig: miss_latency >= hit_latency");
  }

  [[nodiscard]] std::uint32_t sets() const { return size_bytes / (assoc * block_bytes); }
};

struct AccessResult {
  bool hit = false;
  std::uint32_t latency = 0;  ///< cycles until the value is available
};

class TagCache {
 public:
  TagCache(std::string name, const CacheConfig& cfg);

  AccessResult access(Addr addr, AccessKind kind);

  /// Probe without updating replacement/stat state.
  [[nodiscard]] bool contains(Addr addr) const;

  void invalidate_all();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const CacheConfig& config() const { return cfg_; }

  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return accesses_ - hits_; }
  [[nodiscard]] double miss_rate() const {
    return accesses_ == 0 ? 0.0 : static_cast<double>(misses()) / static_cast<double>(accesses_);
  }

  /// Tag-array storage in bits (area model input): tag + valid per block.
  [[nodiscard]] std::uint64_t tag_storage_bits() const;

  /// Publish "<name>.accesses/.hits/.misses" into a registry. Cache
  /// counters stay plain struct fields on the access path (ChampSim
  /// style); this is the one cold-path hand-off into the stats plane.
  void export_stats(StatsRegistry& reg) const;

 private:
  struct Line {
    bool valid = false;
    Addr tag = 0;
    std::uint64_t stamp = 0;  ///< LRU: last use; FIFO: fill time
  };

  [[nodiscard]] std::size_t set_of(Addr addr) const;
  [[nodiscard]] Addr tag_of(Addr addr) const;

  std::string name_;
  CacheConfig cfg_;
  std::vector<Line> lines_;  // sets x assoc row-major
  std::uint64_t tick_ = 0;
  std::uint64_t accesses_ = 0;
  std::uint64_t hits_ = 0;
  Rng rng_{0xCACEu};
};

}  // namespace resim::cache

#endif  // RESIM_CACHE_CACHE_H
