// Memory-system façade: either the paper's "perfect memory system"
// (every access hits in one cycle) or split 32 KB L1 instruction and
// data caches (paper §V.C configurations (i) and (ii)).
#ifndef RESIM_CACHE_MEMSYS_H
#define RESIM_CACHE_MEMSYS_H

#include <memory>
#include <optional>

#include "cache/cache.hpp"

namespace resim::cache {

struct MemSysConfig {
  bool perfect = true;          ///< configuration (i): perfect memory
  CacheConfig l1i{};            ///< used when !perfect
  CacheConfig l1d{};
  /// Optional explicit unified L2 behind the L1s (extension; by default
  /// the L1 miss latency models an L2-hit-class fill, DESIGN.md).
  bool with_l2 = false;
  CacheConfig l2{};

  [[nodiscard]] static MemSysConfig perfect_memory() { return MemSysConfig{}; }

  /// Configuration (ii): "32KByte L1 Instruction and Data Cache, with
  /// associativity of 8 and block size 64 bytes" (Table 1 caption).
  [[nodiscard]] static MemSysConfig paper_l1() {
    MemSysConfig m;
    m.perfect = false;
    m.l1i = CacheConfig{};
    m.l1d = CacheConfig{};
    return m;
  }

  /// L1s backed by an explicit 512 KB 8-way unified L2.
  [[nodiscard]] static MemSysConfig with_unified_l2() {
    MemSysConfig m = paper_l1();
    m.with_l2 = true;
    m.l2.size_bytes = 512 * 1024;
    m.l2.assoc = 8;
    m.l2.block_bytes = 64;
    m.l2.hit_latency = 8;
    m.l2.miss_latency = 60;
    return m;
  }

  void validate() const {
    if (!perfect) {
      l1i.validate();
      l1d.validate();
      if (with_l2) {
        l2.validate();
        require(l2.size_bytes >= l1d.size_bytes, "MemSysConfig: L2 smaller than L1");
      }
    }
  }
};

class MemorySystem {
 public:
  explicit MemorySystem(const MemSysConfig& cfg);

  /// Instruction fetch of the block containing `pc`.
  AccessResult ifetch(Addr pc);

  /// Data read (load issue) / write (store commit).
  AccessResult dread(Addr addr);
  AccessResult dwrite(Addr addr);

  /// Publish L1 cache statistics into `reg` (il1.* / dl1.*). The L2, an
  /// extension the paper's report format predates, intentionally stays
  /// out so reports remain byte-compatible across configurations.
  void export_stats(StatsRegistry& reg) const;

  [[nodiscard]] bool perfect() const { return cfg_.perfect; }
  [[nodiscard]] const TagCache* icache() const { return icache_.get(); }
  [[nodiscard]] const TagCache* dcache() const { return dcache_.get(); }
  [[nodiscard]] const TagCache* l2cache() const { return l2_.get(); }
  [[nodiscard]] const MemSysConfig& config() const { return cfg_; }

 private:
  AccessResult refill_through_l2(const AccessResult& l1_miss, Addr addr, AccessKind kind);

  MemSysConfig cfg_;
  std::unique_ptr<TagCache> icache_;
  std::unique_ptr<TagCache> dcache_;
  std::unique_ptr<TagCache> l2_;
};

}  // namespace resim::cache

#endif  // RESIM_CACHE_MEMSYS_H
