#include "cache/cache.hpp"

namespace resim::cache {

TagCache::TagCache(std::string name, const CacheConfig& cfg)
    : name_(std::move(name)), cfg_(cfg), lines_(cfg.sets() * cfg.assoc) {
  cfg_.validate();
}

void TagCache::export_stats(StatsRegistry& reg) const {
  // add() publishes the names even at zero, matching the report contract:
  // a constructed cache always shows its three counters.
  std::string key = name_;
  key += ".accesses";
  reg.counter(key).add(accesses_);
  key.resize(name_.size());
  key += ".hits";
  reg.counter(key).add(hits_);
  key.resize(name_.size());
  key += ".misses";
  reg.counter(key).add(misses());
}

std::size_t TagCache::set_of(Addr addr) const {
  return static_cast<std::size_t>((addr / cfg_.block_bytes) & (cfg_.sets() - 1));
}

Addr TagCache::tag_of(Addr addr) const { return (addr / cfg_.block_bytes) / cfg_.sets(); }

AccessResult TagCache::access(Addr addr, AccessKind kind) {
  ++accesses_;
  ++tick_;
  const std::size_t base = set_of(addr) * cfg_.assoc;
  const Addr tag = tag_of(addr);

  for (std::size_t w = 0; w < cfg_.assoc; ++w) {
    Line& l = lines_[base + w];
    if (l.valid && l.tag == tag) {
      ++hits_;
      if (cfg_.repl == ReplPolicy::kLru) l.stamp = tick_;
      return {true, cfg_.hit_latency};
    }
  }

  // Miss. Writes without write-allocate go around the cache.
  const bool allocate = kind != AccessKind::kWrite || cfg_.write_allocate;
  if (allocate) {
    std::size_t victim = base;
    bool found_invalid = false;
    for (std::size_t w = 0; w < cfg_.assoc; ++w) {
      if (!lines_[base + w].valid) {
        victim = base + w;
        found_invalid = true;
        break;
      }
    }
    if (!found_invalid) {
      switch (cfg_.repl) {
        case ReplPolicy::kLru:
        case ReplPolicy::kFifo:
          for (std::size_t w = 1; w < cfg_.assoc; ++w) {
            if (lines_[base + w].stamp < lines_[victim].stamp) victim = base + w;
          }
          break;
        case ReplPolicy::kRandom:
          victim = base + static_cast<std::size_t>(rng_.below(cfg_.assoc));
          break;
      }
    }
    lines_[victim] = Line{true, tag, tick_};
  }
  return {false, cfg_.miss_latency};
}

bool TagCache::contains(Addr addr) const {
  const std::size_t base = set_of(addr) * cfg_.assoc;
  const Addr tag = tag_of(addr);
  for (std::size_t w = 0; w < cfg_.assoc; ++w) {
    const Line& l = lines_[base + w];
    if (l.valid && l.tag == tag) return true;
  }
  return false;
}

void TagCache::invalidate_all() {
  for (Line& l : lines_) l = Line{};
}

std::uint64_t TagCache::tag_storage_bits() const {
  const unsigned tag_bits =
      32 - ceil_log2(cfg_.block_bytes) - ceil_log2(cfg_.sets());
  return static_cast<std::uint64_t>(lines_.size()) * (tag_bits + 1);
}

}  // namespace resim::cache
